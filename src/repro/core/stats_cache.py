"""Cross-query statistics cache — the paper's computation-sharing strategy.

Section 3 ("Preparation"): "This is often the most time consuming step.
In our full paper, we present a strategy to share computations between
queries, and therefore reduce the amount of data to read."

The cache exploits two algebraic facts:

1. :class:`~repro.stats.descriptive.SummaryStats` (centered moments up to
   order 4) and :class:`~repro.stats.correlation.PairwiseMoments` are
   *additive over disjoint row sets*.  Whole-table ("global") statistics
   are computed once per table; for each query only the **inside** group
   is scanned, and the **outside** group's statistics are derived as
   ``global - inside``.  Since explorers' selections are typically small
   slices of a big table, this removes the dominant share of the scan.
2. Inside-group statistics depend only on the predicate's canonical
   fingerprint, so re-running, refining the projection of, or re-ranking
   the same selection costs nothing.

Tables are immutable in this engine, so cache entries never go stale.
Entries are keyed by :meth:`~repro.engine.table.Table.fingerprint` — a
content hash — so the cache holds **no reference to the tables
themselves**: dropping a table frees its rows even while its derived
moments stay cached, and two loads of identical content share one set of
entries.  (Earlier revisions pinned a strong reference per table to keep
``id(table)`` stable; that leaked every table the cache ever saw.)

Two bounds keep long-lived shared caches healthy:

* the per-predicate stores (``_inside_stats`` / ``_inside_moments``) are
  LRU-capped at :attr:`StatsCache.max_inside_entries` — every distinct
  predicate a registry ever saw used to be retained forever;
* a per-fingerprint key index makes :meth:`invalidate_fingerprint`
  O(entries for that table) instead of a scan over every store.

:class:`TieredStatsCache` adds the **sketch tier** on top: a
:class:`~repro.stats.sketches.TableSketch` built once per table answers
per-query component scoring from its shared reservoir sample whenever the
sample is large enough for the configured error bound to decide the
comparison — the exact tier only runs for the undecided remainder.
Sketches live in a regular entry store, so ``snapshot()`` /
``merge_from`` / pickling carry them across shards and restarts for free.

Accessors are serialized with a reentrant lock so one cache instance can
be shared across client sessions and job threads — the basis of the
process-wide :class:`~repro.runtime.SharedStatsRegistry`.  Computation
happens under the lock, which is exactly the sharing contract: the first
arrival pays for a table-level statistic, every concurrent and later
arrival reuses it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, fields

import numpy as np

from repro.core.dependency import DependencyMatrix, compute_dependency_matrix
from repro.core.profiling import PROFILER
from repro.engine.database import Selection
from repro.engine.table import Table
from repro.stats.correlation import PairwiseMoments
from repro.stats.descriptive import SummaryStats, summarize
from repro.stats.sketches import (
    DEFAULT_SKETCH_CAPACITY,
    DEFAULT_SKETCH_SEED,
    TableSketch,
    required_sample,
)

#: Default LRU cap for the per-predicate stores.  Each entry is a handful
#: of scalars (summaries) or four small matrices (moments); 4096 distinct
#: predicates per table is far beyond any interactive session while still
#: bounding a long-lived registry.
DEFAULT_MAX_INSIDE_ENTRIES = 4096


@dataclass
class CacheCounters:
    """Hit/miss counters, exposed for the caching benchmark (EXT-CACHE).

    ``sketch_hits`` / ``sketch_fallbacks`` instrument the sketch tier: a
    sketch hit answered scoring without touching the exact stores (it
    counts in *neither* ``hits`` nor ``misses`` — the exact-tier ratios
    keep their historical meaning), a fallback is a query the sketch's
    error bound could not decide.  ``inside_evictions`` counts entries
    dropped by the per-predicate LRU cap.
    """

    column_hits: int = 0
    column_misses: int = 0
    inside_hits: int = 0
    inside_misses: int = 0
    moments_hits: int = 0
    moments_misses: int = 0
    dependency_hits: int = 0
    dependency_misses: int = 0
    sketch_hits: int = 0
    sketch_fallbacks: int = 0
    inside_evictions: int = 0

    @property
    def hits(self) -> int:
        """Total exact-tier hits across all entry kinds."""
        return (self.column_hits + self.inside_hits + self.moments_hits
                + self.dependency_hits)

    @property
    def misses(self) -> int:
        """Total exact-tier misses across all entry kinds."""
        return (self.column_misses + self.inside_misses + self.moments_misses
                + self.dependency_misses)


def _restore_counters(obj) -> CacheCounters:
    """Rebuild counters from a pickled instance, tolerating pickles from
    revisions that predate newer fields."""
    if obj is None:
        return CacheCounters()
    return CacheCounters(**{f.name: int(getattr(obj, f.name, 0) or 0)
                            for f in fields(CacheCounters)})


@dataclass
class StatsCache:
    """Shared statistics across queries over immutable tables.

    All accessors take the objects (table / selection) rather than keys;
    key construction is internal (content fingerprints, never object
    identity).  Safe to share across threads.

    Args:
        max_inside_entries: LRU cap on each per-predicate store
            (``_inside_stats`` and ``_inside_moments`` are bounded
            independently at this size).
    """

    counters: CacheCounters = field(default_factory=CacheCounters)
    max_inside_entries: int = DEFAULT_MAX_INSIDE_ENTRIES

    #: The entry stores pickled by ``__getstate__``, in declaration order.
    _STORES = ("_column_stats", "_inside_stats", "_global_moments",
               "_inside_moments", "_dependency")

    #: Stores under the per-predicate LRU cap (insertion-ordered).
    _BOUNDED = frozenset({"_inside_stats", "_inside_moments"})

    def __post_init__(self):
        self._lock = threading.RLock()
        self._column_stats: dict[tuple[str, str], SummaryStats] = {}
        self._inside_stats: OrderedDict[tuple[str, str, str], SummaryStats] = OrderedDict()
        self._global_moments: dict[tuple[str, tuple[str, ...]], PairwiseMoments] = {}
        self._inside_moments: OrderedDict[tuple[str, str, tuple[str, ...]], PairwiseMoments] = OrderedDict()
        self._dependency: dict[tuple[str, str, int, tuple[str, ...]], DependencyMatrix] = {}
        # fingerprint -> {(store_name, key)}: the eviction index that
        # makes invalidate_fingerprint proportional to one table's
        # entries instead of the whole cache.
        self._by_fingerprint: dict[str, set[tuple[str, tuple]]] = {}

    # -- store plumbing ----------------------------------------------------------

    def _index_add(self, name: str, key: tuple) -> None:
        self._by_fingerprint.setdefault(key[0], set()).add((name, key))

    def _index_discard(self, name: str, key: tuple) -> None:
        entries = self._by_fingerprint.get(key[0])
        if entries is not None:
            entries.discard((name, key))
            if not entries:
                del self._by_fingerprint[key[0]]

    def _get(self, name: str, key: tuple):
        """Lookup that refreshes LRU position on bounded stores.  Caller
        holds the lock."""
        store = getattr(self, name)
        value = store.get(key)
        if value is not None and name in self._BOUNDED:
            store.move_to_end(key)
        return value

    def _put(self, name: str, key: tuple, value) -> None:
        """Insert maintaining the fingerprint index and the LRU caps.
        Caller holds the lock."""
        store = getattr(self, name)
        existed = key in store
        store[key] = value
        if not existed:
            self._index_add(name, key)
        if name in self._BOUNDED:
            if existed:
                store.move_to_end(key)
            while len(store) > self.max_inside_entries:
                old_key, _ = store.popitem(last=False)
                self._index_discard(name, old_key)
                self.counters.inside_evictions += 1

    # -- serialization -----------------------------------------------------------

    def _config_state(self) -> dict:
        return {"max_inside_entries": self.max_inside_entries}

    def _restore_config(self, cfg: dict) -> None:
        self.max_inside_entries = int(
            cfg.get("max_inside_entries", DEFAULT_MAX_INSIDE_ENTRIES))

    def __getstate__(self) -> dict:
        """Pickle the entries, counters and config, never the lock.

        Entries are :class:`SummaryStats` / :class:`PairwiseMoments` /
        :class:`DependencyMatrix` / :class:`TableSketch` values keyed by
        content fingerprints, so a cache snapshot is self-contained:
        executor backends ship it to worker processes to warm a shard
        without re-scanning the table.
        """
        with self._lock:
            state = {name: dict(getattr(self, name)) for name in self._STORES}
            state["counters"] = self.counters
            state["config"] = self._config_state()
            return state

    def __setstate__(self, state: dict) -> None:
        self.counters = _restore_counters(state.pop("counters", None))
        self._restore_config(state.pop("config", None) or {})
        self._lock = threading.RLock()
        self._by_fingerprint = {}
        for name in self._STORES:
            store = OrderedDict() if name in self._BOUNDED else {}
            setattr(self, name, store)
            for key, value in (state.get(name) or {}).items():
                store[key] = value
                self._index_add(name, key)

    def _empty_clone(self) -> "StatsCache":
        """A fresh cache with this one's configuration and no entries."""
        return StatsCache(max_inside_entries=self.max_inside_entries)

    def snapshot(self) -> "StatsCache":
        """A detached, picklable copy of this cache's current entries.

        Counters start fresh on the copy (they describe *this* cache's
        history, not the snapshot's).  This is what the process executor
        ships when it replays table registrations into a respawned
        worker shard: snapshotting at replay time — rather than reusing
        the registration-time object — means statistics computed since
        registration warm-restore too.
        """
        clone = self._empty_clone()
        clone.merge_from(self)
        return clone

    def entry_signature(self) -> int:
        """Order-independent hash of the cached entry *keys*.

        Keys are content fingerprints (plus predicate/column/config
        parts) and every value is derived deterministically from its
        key, so two caches with equal signatures hold equal entries.
        This is the snapshot store's change detector: it catches a cache
        whose entries were invalidated and replaced without the total
        count moving, which a size comparison cannot.  Process-local
        (``hash`` of strings is seed-randomized) — never persist it.
        """
        with self._lock:
            return hash(frozenset(
                (name, key) for name in self._STORES
                for key in getattr(self, name)))

    def merge_from(self, other: "StatsCache") -> int:
        """Absorb another cache's entries (existing keys win); returns the
        number of entries copied.  This is how a worker shard adopts a
        pre-warmed snapshot shipped from the coordinating process.

        Stores the other cache lacks (a plain cache merged into a tiered
        one, or vice versa) are skipped, so the two kinds interoperate.
        """
        copied = 0
        with other._lock:
            snapshots = [dict(getattr(other, name, None) or {})
                         for name in self._STORES]
        with self._lock:
            for name, snap in zip(self._STORES, snapshots):
                store = getattr(self, name)
                for key, value in snap.items():
                    if key not in store:
                        self._put(name, key, value)
                        copied += 1
        return copied

    # -- keys -------------------------------------------------------------------

    @staticmethod
    def _key(table: Table) -> str:
        return table.fingerprint()

    # -- per-column summaries ------------------------------------------------------

    def global_column_stats(self, table: Table, column: str) -> SummaryStats:
        """Whole-table summary of one numeric column (computed once)."""
        key = (self._key(table), column)
        with self._lock:
            cached = self._get("_column_stats", key)
            if cached is not None:
                self.counters.column_hits += 1
                return cached
            self.counters.column_misses += 1
            with PROFILER.timer("kernel.column_summary"):
                stats = summarize(table.column(column).numeric_values())
            self._put("_column_stats", key, stats)
            return stats

    def inside_column_stats(self, selection: Selection, column: str) -> SummaryStats:
        """Summary of the selected rows of one column (per-predicate memo)."""
        key = (self._key(selection.table), selection.fingerprint, column)
        with self._lock:
            cached = self._get("_inside_stats", key)
            if cached is not None:
                self.counters.inside_hits += 1
                return cached
            self.counters.inside_misses += 1
            with PROFILER.timer("kernel.inside_summary"):
                values = selection.table.column(column).numeric_values()[selection.mask]
                stats = summarize(values)
            self._put("_inside_stats", key, stats)
            return stats

    def outside_column_stats(self, selection: Selection, column: str) -> SummaryStats:
        """Complement summary, derived without scanning the complement."""
        return self.global_column_stats(selection.table, column).subtract(
            self.inside_column_stats(selection, column))

    # -- pairwise moments ------------------------------------------------------------

    def global_moments(self, table: Table,
                       columns: tuple[str, ...]) -> PairwiseMoments:
        """Whole-table pairwise moments over the numeric columns."""
        key = (self._key(table), columns)
        with self._lock:
            cached = self._get("_global_moments", key)
            if cached is not None:
                self.counters.moments_hits += 1
                return cached
            self.counters.moments_misses += 1
            with PROFILER.timer("kernel.global_moments"):
                moments = PairwiseMoments.from_matrix(table.numeric_matrix(columns))
            self._put("_global_moments", key, moments)
            return moments

    def inside_moments(self, selection: Selection,
                       columns: tuple[str, ...]) -> PairwiseMoments:
        """Pairwise moments of the selected rows (per-predicate memo)."""
        key = (self._key(selection.table), selection.fingerprint, columns)
        with self._lock:
            cached = self._get("_inside_moments", key)
            if cached is not None:
                self.counters.moments_hits += 1
                return cached
            self.counters.moments_misses += 1
            with PROFILER.timer("kernel.inside_moments"):
                data = selection.table.numeric_matrix(columns)[selection.mask]
                moments = PairwiseMoments.from_matrix(data)
            self._put("_inside_moments", key, moments)
            return moments

    def group_correlations(self, selection: Selection,
                           columns: tuple[str, ...]) -> tuple[
                               np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(corr_in, n_in, corr_out, n_out)`` for the numeric columns.

        The outside matrices come from moment subtraction — the core of
        the sharing strategy.
        """
        inside = self.inside_moments(selection, columns)
        global_ = self.global_moments(selection.table, columns)
        outside = global_.subtract(inside)
        corr_in, n_in = inside.correlations()
        corr_out, n_out = outside.correlations()
        return corr_in, n_in, corr_out, n_out

    # -- dependency matrix -------------------------------------------------------------

    def dependency_matrix(self, table: Table, columns: tuple[str, ...],
                          method: str, mi_bins: int) -> DependencyMatrix:
        """Whole-table dependency matrix (query-independent, so shared)."""
        key = (self._key(table), method, mi_bins, columns)
        with self._lock:
            cached = self._get("_dependency", key)
            if cached is not None:
                self.counters.dependency_hits += 1
                return cached
            self.counters.dependency_misses += 1
            with PROFILER.timer("kernel.dependency_matrix"):
                matrix = compute_dependency_matrix(table, columns, method=method,
                                                   mi_bins=mi_bins)
            self._put("_dependency", key, matrix)
            return matrix

    # -- maintenance ---------------------------------------------------------------------

    def invalidate_table(self, table: Table) -> None:
        """Drop every entry for one table (for completeness; tables are
        immutable so this is rarely needed)."""
        self.invalidate_fingerprint(table.fingerprint())

    def invalidate_fingerprint(self, fingerprint: str) -> None:
        """Drop every entry keyed under one table fingerprint (what the
        runtime's table store calls on eviction — the table object may
        already be gone).  O(entries for that fingerprint) via the key
        index, independent of how much other tables have cached."""
        with self._lock:
            for name, key in self._by_fingerprint.pop(fingerprint, ()):
                getattr(self, name).pop(key, None)

    def clear(self) -> None:
        """Drop everything (counters are preserved)."""
        with self._lock:
            for name in self._STORES:
                getattr(self, name).clear()
            self._by_fingerprint.clear()

    @property
    def size(self) -> int:
        """Total number of cached entries."""
        with self._lock:
            return sum(len(getattr(self, name)) for name in self._STORES)


@dataclass
class TieredStatsCache(StatsCache):
    """A :class:`StatsCache` with a sketch tier underneath the exact one.

    A :class:`~repro.stats.sketches.TableSketch` per table (built by
    :meth:`ensure_sketch`, typically at registration) answers per-query
    component scoring from its shared reservoir sample — in O(sample)
    instead of O(rows) — whenever the sample is large enough that the
    configured error bound already decides the comparison:

    * :meth:`sketch_column_answer` gates on the non-missing sample count
      inside **and** outside reaching
      :func:`~repro.stats.sketches.required_sample` for the margin;
    * :meth:`sketch_group_correlations` gates the same way on sampled
      row counts.

    Tables at or under ``sketch_capacity`` rows return ``None`` from both
    (``covers_all``): the exact tier is already cheap there and stays
    authoritative, so small-table results are bit-identical with or
    without the tier.  Every undecided answer falls back to the exact
    accessors and is counted in ``counters.sketch_fallbacks``.
    """

    sketch_capacity: int = DEFAULT_SKETCH_CAPACITY
    sketch_seed: int = DEFAULT_SKETCH_SEED

    _STORES = StatsCache._STORES + ("_sketches",)

    def __post_init__(self):
        super().__post_init__()
        self._sketches: dict[tuple[str], TableSketch] = {}

    def _config_state(self) -> dict:
        cfg = super()._config_state()
        cfg["sketch_capacity"] = self.sketch_capacity
        cfg["sketch_seed"] = self.sketch_seed
        return cfg

    def _restore_config(self, cfg: dict) -> None:
        super()._restore_config(cfg)
        self.sketch_capacity = int(
            cfg.get("sketch_capacity", DEFAULT_SKETCH_CAPACITY))
        self.sketch_seed = int(cfg.get("sketch_seed", DEFAULT_SKETCH_SEED))

    def _empty_clone(self) -> "TieredStatsCache":
        return TieredStatsCache(max_inside_entries=self.max_inside_entries,
                                sketch_capacity=self.sketch_capacity,
                                sketch_seed=self.sketch_seed)

    # -- the sketch store --------------------------------------------------------

    def ensure_sketch(self, table: Table) -> TableSketch:
        """The table's sketch, built on first call (one pass per column).

        Registration-time warming calls this; a sketch that arrived via
        :meth:`merge_from` (shard handoff, persistence restore) short-
        circuits the build.
        """
        key = (self._key(table),)
        with self._lock:
            sketch = self._sketches.get(key)
            if sketch is None:
                with PROFILER.timer("kernel.sketch_build"):
                    sketch = TableSketch.build(table,
                                               capacity=self.sketch_capacity,
                                               seed=self.sketch_seed)
                self._put("_sketches", key, sketch)
            return sketch

    def sketch_for(self, fingerprint: str) -> TableSketch | None:
        """The sketch for a fingerprint, or None (never builds)."""
        with self._lock:
            return self._sketches.get((fingerprint,))

    # -- sketch answers ----------------------------------------------------------

    def global_column_stats(self, table: Table, column: str) -> SummaryStats:
        """Whole-table summary, served from the sketch when available.

        The sketch's streaming moments are exact (one full pass at build
        time), so this is not an approximation — it just avoids a second
        scan of the column on a cold exact store.  Served entries count
        as ``sketch_hits``, not exact-tier traffic.
        """
        key = (self._key(table), column)
        with self._lock:
            cached = self._get("_column_stats", key)
            if cached is not None:
                self.counters.column_hits += 1
                return cached
            sketch = self._sketches.get((key[0],))
            if sketch is not None:
                col = sketch.columns.get(column)
                if col is not None:
                    self.counters.sketch_hits += 1
                    self._put("_column_stats", key, col.moments)
                    return col.moments
        return super().global_column_stats(table, column)

    def sketch_column_answer(self, selection: Selection, column: str,
                             max_margin: float) -> tuple[
                                 SummaryStats, SummaryStats,
                                 np.ndarray, np.ndarray] | None:
        """Inside/outside summaries of one column from the sketch sample.

        Returns ``(inside_stats, outside_stats, inside_sample,
        outside_sample)`` — summaries carry the *observed sample* counts
        (honest: every downstream significance test then runs at the
        sample size actually seen, which is conservative), and the sample
        arrays let raw-value tests (Levene, Mann-Whitney) run on the
        sampled rows.  Returns None when the sketch is missing, the table
        is small enough that the exact tier is authoritative
        (``covers_all``), or either group's non-missing sample count is
        below ``required_sample(max_margin)`` — the lazy exact fallback.
        """
        sketch = self.sketch_for(self._key(selection.table))
        if sketch is None or sketch.covers_all:
            return None
        col = sketch.columns.get(column)
        if col is None or selection.mask.size != sketch.n_rows:
            return None
        k_req = required_sample(max_margin)
        with PROFILER.timer("kernel.sketch_answer"):
            inside_mask = sketch.sample_mask(selection.mask)
            values_in = col.sample[inside_mask]
            values_out = col.sample[~inside_mask]
            inside = summarize(values_in)
            outside = summarize(values_out)
        if inside.n < k_req or outside.n < k_req:
            with self._lock:
                self.counters.sketch_fallbacks += 1
            return None
        with self._lock:
            self.counters.sketch_hits += 1
        return inside, outside, values_in, values_out

    def sketch_group_correlations(self, selection: Selection,
                                  columns: tuple[str, ...],
                                  max_margin: float) -> tuple[
                                      np.ndarray, np.ndarray,
                                      np.ndarray, np.ndarray] | None:
        """``(corr_in, n_in, corr_out, n_out)`` from the sketch sample.

        The reservoir is row-aligned across columns, so the sampled
        inside/outside sub-matrices feed the same four-GEMM pairwise
        estimator the exact tier uses — at O(sample x M^2) instead of
        O(rows x M^2).  Pair counts are the observed sample counts.
        Returns None under the same conditions as
        :meth:`sketch_column_answer`.
        """
        sketch = self.sketch_for(self._key(selection.table))
        if sketch is None or sketch.covers_all:
            return None
        if selection.mask.size != sketch.n_rows:
            return None
        if any(c not in sketch.columns for c in columns):
            return None
        k_req = required_sample(max_margin)
        inside_mask = sketch.sample_mask(selection.mask)
        k_in = int(inside_mask.sum())
        k_out = int(inside_mask.size - k_in)
        if k_in < k_req or k_out < k_req:
            with self._lock:
                self.counters.sketch_fallbacks += 1
            return None
        with PROFILER.timer("kernel.sketch_answer"):
            mat = sketch.sample_matrix(columns)
            corr_in, n_in = PairwiseMoments.from_matrix(
                mat[inside_mask]).correlations()
            corr_out, n_out = PairwiseMoments.from_matrix(
                mat[~inside_mask]).correlations()
        with self._lock:
            self.counters.sketch_hits += 1
        return corr_in, n_in, corr_out, n_out
