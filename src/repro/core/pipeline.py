"""The Ziggy pipeline facade (Figure 4), split into plan and execute.

``Ziggy`` wires the three stages — preparation, view search,
post-processing — around a shared statistics cache, and exposes the
library-style API the paper's conclusion promises ("we intend to
distribute our tuple description engine as a library, to be included
into external exploration systems")::

    from repro import Ziggy, ZiggyConfig
    ziggy = Ziggy(table)
    result = ziggy.characterize("violent_crime_rate > 0.8")
    for view in result.views:
        print(view.explanation)

Under the facade the pipeline is an explicit plan/execute pair:
:class:`CharacterizationPlan` captures everything a run needs (selection,
configuration, component registry, statistics cache) before any work
happens, and :class:`PlanExecutor` carries the plan through the stages
while emitting typed :class:`~repro.core.events.StageEvent`\\ s —
``prepared``, ``component-scored``, ``view-ranked`` (one per view, the
progressive-results stream), ``search-complete``, ``view-ready`` (one per
validated view) and ``result``.  Front-ends that stream (the service's
``/v2/jobs/<id>/events`` endpoint) consume the events; everything else
just takes the returned :class:`CharacterizationResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.components.base import ComponentRegistry, default_registry
from repro.core.config import ZiggyConfig
from repro.core.events import (
    BATCH_ITEM,
    COMPONENT_SCORED,
    PREPARED,
    RESULT,
    VIEW_READY,
    EmitFn,
    StageEvent,
    legacy_stage,
)
from repro.core.explain.generator import ExplanationGenerator
from repro.core.preparation import PreparationEngine, PreparedData
from repro.core.profiling import PROFILER
from repro.core.search.searcher import SearchOutput, ViewSearcher
from repro.core.significance.validator import validate_views
from repro.core.stats_cache import StatsCache
from repro.core.views import CharacterizationResult
from repro.engine.database import Database, Selection
from repro.engine.table import Table

#: Legacy progress-callback signature: ``progress(stage, payload)``.  The
#: stages are the :func:`~repro.core.events.legacy_stage` projection of
#: the typed event stream — ``"preparation"`` (:class:`PreparedData`),
#: ``"component-scored"`` (the catalog), ``"view"`` (one
#: :class:`ViewResult` per ranked view), ``"search"``
#: (:class:`SearchOutput`), ``"view-ready"`` (``(rank, ViewResult)``) and
#: ``"result"`` (:class:`CharacterizationResult`).  Batch runs
#: additionally emit ``"batch_item"`` with ``(index, result)`` after each
#: predicate.  The callback runs synchronously on the pipeline thread; an
#: exception it raises aborts the characterization (this is how the
#: service layer implements cooperative cancellation).
ProgressCallback = Callable[[str, object], None]


@dataclass(frozen=True)
class CharacterizationPlan:
    """Everything one characterization run needs, fixed up front.

    Building the plan is cheap and side-effect free (the selection is
    already evaluated); executing it does all the work.  Plans make the
    execution core reusable: the same plan can be re-executed (idempotent
    given the immutable inputs), shipped to a worker thread, or inspected
    before running.

    Attributes:
        selection: the selection to characterize.
        config: the effective configuration for this run.
        registry: the component registry to evaluate.
        cache: the statistics cache to share computations through (None
            = an ephemeral cache per stage, no sharing).
        predicate_text: canonical predicate text for the result.
    """

    selection: Selection
    config: ZiggyConfig
    registry: ComponentRegistry
    cache: StatsCache | None
    predicate_text: str

    def __getstate__(self) -> dict:
        """Pickle the plan *without* its statistics cache.

        Plans are the library-level unit of shippable work: a pickled
        plan can be rebuilt in another process and re-executed (the
        service's process backend ships higher-level
        :class:`~repro.runtime.CharacterizationTask` descriptions
        instead, but library embedders move plans directly).  The cache
        is per-process runtime state, so shipping it would both bloat
        the payload and fork the sharing contract; the receiving side
        rebinds its own via :meth:`with_cache`.
        """
        state = dict(self.__dict__)
        state["cache"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def with_cache(self, cache: StatsCache | None) -> "CharacterizationPlan":
        """The same plan bound to a different statistics cache (what a
        worker shard calls after unpickling)."""
        return CharacterizationPlan(
            selection=self.selection, config=self.config,
            registry=self.registry, cache=cache,
            predicate_text=self.predicate_text)

    @classmethod
    def for_selection(cls, selection: Selection, config: ZiggyConfig,
                      registry: ComponentRegistry | None = None,
                      cache: StatsCache | None = None
                      ) -> "CharacterizationPlan":
        """Build a plan for an explicit selection."""
        return cls(
            selection=selection,
            config=config,
            registry=registry if registry is not None else default_registry(),
            cache=cache,
            predicate_text=(selection.predicate.canonical()
                            if selection.predicate is not None else "TRUE"),
        )


class PlanExecutor:
    """Carries a :class:`CharacterizationPlan` through the three stages.

    Args:
        preparation: the preparation engine to run stage one with; it
            holds the per-engine sample memo, while the statistics cache
            comes from each plan (so one executor can serve plans bound
            to different shared caches).
    """

    def __init__(self, preparation: PreparationEngine | None = None):
        self.preparation = (preparation if preparation is not None
                            else PreparationEngine())
        self.last_prepared: PreparedData | None = None
        self.last_search: SearchOutput | None = None

    def execute(self, plan: CharacterizationPlan,
                emit: EmitFn | None = None) -> CharacterizationResult:
        """Run the plan, emitting typed stage events along the way.

        An exception raised by ``emit`` aborts the run (cooperative
        cancellation); the stage timings always cover exactly the work
        done.
        """
        cfg = plan.config
        timings: dict[str, float] = {}
        notes: list[str] = []

        # The run-scoped profile picks up every kernel timer fired below
        # (statistics cache, sketch answers, dependency matrix); its
        # totals join the stage timings on the result, and the same
        # records accumulate in the process-wide PROFILER for /v2/state.
        with PROFILER.collect() as profile:
            t0 = time.perf_counter()
            prepared = self.preparation.prepare(plan.selection, cfg,
                                                cache=plan.cache,
                                                registry=plan.registry)
            timings["preparation"] = time.perf_counter() - t0
            PROFILER.record("stage.preparation", timings["preparation"])
            notes.extend(prepared.notes)
            self.last_prepared = prepared
            if emit is not None:
                emit(StageEvent(PREPARED, prepared))
                emit(StageEvent(COMPONENT_SCORED, prepared.catalog))

            t1 = time.perf_counter()
            search = ViewSearcher(cfg).search(prepared, emit=emit)
            timings["view_search"] = time.perf_counter() - t1
            PROFILER.record("stage.view_search", timings["view_search"])
            notes.extend(search.notes)
            self.last_search = search

            t2 = time.perf_counter()
            validated, val_notes = validate_views(
                search.views, cfg, n_candidates=search.n_candidates)
            explained = ExplanationGenerator(cfg).annotate(validated)
            timings["post_processing"] = time.perf_counter() - t2
            PROFILER.record("stage.post_processing",
                            timings["post_processing"])
            notes.extend(val_notes)
            if emit is not None:
                for rank, view in enumerate(explained, start=1):
                    emit(StageEvent(VIEW_READY, (rank, view)))

        # Per-kernel totals ride the result next to the stage timings —
        # the profile a client sees explains where its own run went.
        for name, record in profile.snapshot().items():
            if name.startswith("kernel."):
                timings[name] = record["total_s"]

        result = CharacterizationResult(
            views=tuple(explained),
            n_inside=plan.selection.n_inside,
            n_outside=plan.selection.n_outside,
            n_columns_considered=len(prepared.active_columns),
            timings=timings,
            predicate=plan.predicate_text,
            notes=tuple(notes),
        )
        if emit is not None:
            emit(StageEvent(RESULT, result))
        return result


def _bridge(progress: ProgressCallback | None,
            emit: EmitFn | None) -> EmitFn | None:
    """Fan one event stream out to the typed and the legacy consumer."""
    if progress is None and emit is None:
        return None

    def _emit(event: StageEvent) -> None:
        if emit is not None:
            emit(event)
        if progress is not None:
            progress(legacy_stage(event.kind), event.payload)

    return _emit


class Ziggy:
    """The tuple-characterization engine.

    Args:
        source: a :class:`Table` (characterize predicates against it) or
            a :class:`Database` (characterize ``(table_name, predicate)``
            pairs or full SELECT statements).
        config: pipeline configuration; defaults are the paper's.
        registry: component registry; defaults to the paper's set.
        share_statistics: keep a cross-query :class:`StatsCache` (the
            paper's computation-sharing strategy).  Disable to measure
            cold-start behaviour.
        cache: an explicit statistics cache to share computations
            through — this is how sessions borrow the runtime's
            cross-client caches instead of owning private ones.  When
            given, ``share_statistics`` is ignored.
    """

    def __init__(self, source: Table | Database,
                 config: ZiggyConfig | None = None,
                 registry: ComponentRegistry | None = None,
                 share_statistics: bool = True,
                 cache: StatsCache | None = None):
        if isinstance(source, Table):
            self.database = Database()
            self.database.register(source)
            self._default_table: str | None = source.name
        elif isinstance(source, Database):
            self.database = source
            names = source.table_names()
            self._default_table = names[0] if len(names) == 1 else None
        else:
            raise TypeError(
                f"source must be a Table or Database, got {type(source).__name__}")
        self.config = config if config is not None else ZiggyConfig()
        self.registry = registry if registry is not None else default_registry()
        if cache is not None:
            self.cache: StatsCache | None = cache
        else:
            self.cache = StatsCache() if share_statistics else None
        self._executor = PlanExecutor(
            PreparationEngine(registry=self.registry, cache=self.cache))

    def rebind_cache(self, cache: StatsCache | None) -> None:
        """Swap the statistics cache this engine shares computations
        through.

        Sessions call this when the runtime's registry hands them a
        different cache than the one the engine was built with (after a
        table-store eviction recreated it), so every borrower converges
        back onto one shared instance instead of diverging onto stale
        private copies.
        """
        self.cache = cache
        self._executor.preparation.cache = cache

    # -- planning -------------------------------------------------------------

    def plan(self, where: str | None, table: str | None = None,
             config: ZiggyConfig | None = None) -> CharacterizationPlan:
        """Build (but do not run) the plan for one predicate."""
        table_name = table or self._default_table
        if table_name is None:
            raise ValueError("multiple tables registered; pass table=...")
        selection = self.database.select(table_name, where)
        return self.plan_selection(selection, config=config)

    def plan_selection(self, selection: Selection,
                       config: ZiggyConfig | None = None
                       ) -> CharacterizationPlan:
        """Build the plan for an explicit selection."""
        return CharacterizationPlan.for_selection(
            selection,
            config=config if config is not None else self.config,
            registry=self.registry,
            cache=self.cache,
        )

    def execute(self, plan: CharacterizationPlan,
                progress: ProgressCallback | None = None,
                emit: EmitFn | None = None) -> CharacterizationResult:
        """Run a plan through this engine's executor.

        ``emit`` receives the typed :class:`StageEvent` stream;
        ``progress`` receives its legacy ``(stage, payload)`` projection.
        Either callback may raise to abort the run (cancellation).
        """
        return self._executor.execute(plan, emit=_bridge(progress, emit))

    # -- public API -----------------------------------------------------------

    def characterize(self, where: str | None, table: str | None = None,
                     config: ZiggyConfig | None = None,
                     progress: ProgressCallback | None = None,
                     emit: EmitFn | None = None
                     ) -> CharacterizationResult:
        """Characterize the selection defined by a predicate.

        Args:
            where: predicate text (the body of a WHERE clause), or None
                to select everything (which raises — a selection must
                have a complement).
            table: table name; optional when the source holds one table.
            config: per-call config override.
            progress: optional :data:`ProgressCallback` receiving staged
                events, including one ``"view"`` event per ranked view.
            emit: optional typed :class:`StageEvent` consumer.

        Returns:
            The ranked, validated, explained views plus stage timings.
        """
        return self.execute(self.plan(where, table=table, config=config),
                            progress=progress, emit=emit)

    def characterize_query(self, sql: str,
                           config: ZiggyConfig | None = None,
                           progress: ProgressCallback | None = None,
                           emit: EmitFn | None = None
                           ) -> CharacterizationResult:
        """Characterize a full SELECT statement's WHERE clause."""
        selection = self.database.selection_for_query(sql)
        return self.characterize_selection(selection, config=config,
                                           progress=progress, emit=emit)

    def characterize_many(self, wheres: Sequence[str],
                          table: str | None = None,
                          config: ZiggyConfig | None = None,
                          progress: ProgressCallback | None = None,
                          emit: EmitFn | None = None
                          ) -> list[CharacterizationResult]:
        """Characterize several predicates against one table in one call.

        The predicates run sequentially through this engine's shared
        :class:`StatsCache`, so table-level statistics (global summaries,
        pairwise moments, the dependency matrix) are computed once and hit
        the cache for every subsequent predicate — the paper's
        computation-sharing strategy applied across a batch.

        Emits a ``batch-item`` event (legacy stage ``"batch_item"``) with
        ``(index, result)`` after each predicate, in addition to the
        per-query events.
        """
        bridged = _bridge(progress, emit)
        results: list[CharacterizationResult] = []
        for index, where in enumerate(wheres):
            result = self.characterize(where, table=table, config=config,
                                       progress=progress, emit=emit)
            results.append(result)
            if bridged is not None:
                bridged(StageEvent(BATCH_ITEM, (index, result)))
        return results

    def characterize_selection(self, selection: Selection,
                               config: ZiggyConfig | None = None,
                               progress: ProgressCallback | None = None,
                               emit: EmitFn | None = None
                               ) -> CharacterizationResult:
        """Characterize an explicit :class:`Selection` (the core path).

        ``progress``/``emit`` receive staged events (see
        :data:`ProgressCallback` and :class:`StageEvent`); raising from a
        callback aborts the run, which is how callers implement
        cancellation of long searches.
        """
        return self.execute(self.plan_selection(selection, config=config),
                            progress=progress, emit=emit)

    # -- introspection -----------------------------------------------------------

    @property
    def last_prepared(self) -> PreparedData | None:
        """The executor's most recent preparation output."""
        return self._executor.last_prepared

    @property
    def last_search(self) -> SearchOutput | None:
        """The executor's most recent search output."""
        return self._executor.last_search

    def dendrogram_text(self) -> str | None:
        """ASCII dendrogram of the last linkage search (tuning support
        for ``MIN_tight``), or None when unavailable."""
        if self.last_search is None or self.last_search.dendrogram is None:
            return None
        return self.last_search.dendrogram.render()

    def cache_counters(self):
        """The shared cache's hit/miss counters (None when sharing off)."""
        return self.cache.counters if self.cache is not None else None
