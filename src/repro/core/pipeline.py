"""The Ziggy pipeline facade (Figure 4).

``Ziggy`` wires the three stages — preparation, view search,
post-processing — around a shared statistics cache, and exposes the
library-style API the paper's conclusion promises ("we intend to
distribute our tuple description engine as a library, to be included
into external exploration systems")::

    from repro import Ziggy, ZiggyConfig
    ziggy = Ziggy(table)
    result = ziggy.characterize("violent_crime_rate > 0.8")
    for view in result.views:
        print(view.explanation)
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from repro.core.components.base import ComponentRegistry, default_registry
from repro.core.config import ZiggyConfig
from repro.core.explain.generator import ExplanationGenerator
from repro.core.preparation import PreparationEngine, PreparedData
from repro.core.search.searcher import SearchOutput, ViewSearcher
from repro.core.significance.validator import validate_views
from repro.core.stats_cache import StatsCache
from repro.core.views import CharacterizationResult
from repro.engine.database import Database, Selection
from repro.engine.table import Table

#: Progress-callback signature: ``progress(stage, payload)``.  Stages (in
#: order): ``"preparation"`` (payload: :class:`PreparedData`), ``"view"``
#: (one :class:`ViewResult`, fired per view as the searcher ranks it —
#: the progressive-results stream), ``"search"`` (:class:`SearchOutput`),
#: ``"result"`` (:class:`CharacterizationResult`).  Batch runs
#: additionally emit ``"batch_item"`` with ``(index, result)`` after each
#: predicate.  The callback runs synchronously on the pipeline thread; an
#: exception it raises aborts the characterization (this is how the
#: service layer implements cooperative cancellation).
ProgressCallback = Callable[[str, object], None]


class Ziggy:
    """The tuple-characterization engine.

    Args:
        source: a :class:`Table` (characterize predicates against it) or
            a :class:`Database` (characterize ``(table_name, predicate)``
            pairs or full SELECT statements).
        config: pipeline configuration; defaults are the paper's.
        registry: component registry; defaults to the paper's set.
        share_statistics: keep a cross-query :class:`StatsCache` (the
            paper's computation-sharing strategy).  Disable to measure
            cold-start behaviour.
    """

    def __init__(self, source: Table | Database,
                 config: ZiggyConfig | None = None,
                 registry: ComponentRegistry | None = None,
                 share_statistics: bool = True):
        if isinstance(source, Table):
            self.database = Database()
            self.database.register(source)
            self._default_table: str | None = source.name
        elif isinstance(source, Database):
            self.database = source
            names = source.table_names()
            self._default_table = names[0] if len(names) == 1 else None
        else:
            raise TypeError(
                f"source must be a Table or Database, got {type(source).__name__}")
        self.config = config if config is not None else ZiggyConfig()
        self.registry = registry if registry is not None else default_registry()
        self.cache: StatsCache | None = StatsCache() if share_statistics else None
        self._preparation = PreparationEngine(registry=self.registry,
                                              cache=self.cache)
        self.last_prepared: PreparedData | None = None
        self.last_search: SearchOutput | None = None

    # -- public API -----------------------------------------------------------

    def characterize(self, where: str | None, table: str | None = None,
                     config: ZiggyConfig | None = None,
                     progress: ProgressCallback | None = None
                     ) -> CharacterizationResult:
        """Characterize the selection defined by a predicate.

        Args:
            where: predicate text (the body of a WHERE clause), or None
                to select everything (which raises — a selection must
                have a complement).
            table: table name; optional when the source holds one table.
            config: per-call config override.
            progress: optional :data:`ProgressCallback` receiving staged
                events, including one ``"view"`` event per ranked view.

        Returns:
            The ranked, validated, explained views plus stage timings.
        """
        table_name = table or self._default_table
        if table_name is None:
            raise ValueError("multiple tables registered; pass table=...")
        selection = self.database.select(table_name, where)
        return self.characterize_selection(selection, config=config,
                                           progress=progress)

    def characterize_query(self, sql: str,
                           config: ZiggyConfig | None = None,
                           progress: ProgressCallback | None = None
                           ) -> CharacterizationResult:
        """Characterize a full SELECT statement's WHERE clause."""
        selection = self.database.selection_for_query(sql)
        return self.characterize_selection(selection, config=config,
                                           progress=progress)

    def characterize_many(self, wheres: Sequence[str],
                          table: str | None = None,
                          config: ZiggyConfig | None = None,
                          progress: ProgressCallback | None = None
                          ) -> list[CharacterizationResult]:
        """Characterize several predicates against one table in one call.

        The predicates run sequentially through this engine's shared
        :class:`StatsCache`, so table-level statistics (global summaries,
        pairwise moments, the dependency matrix) are computed once and hit
        the cache for every subsequent predicate — the paper's
        computation-sharing strategy applied across a batch.

        Emits a ``"batch_item"`` progress event with ``(index, result)``
        after each predicate, in addition to the per-query events.
        """
        results: list[CharacterizationResult] = []
        for index, where in enumerate(wheres):
            result = self.characterize(where, table=table, config=config,
                                       progress=progress)
            results.append(result)
            if progress is not None:
                progress("batch_item", (index, result))
        return results

    def characterize_selection(self, selection: Selection,
                               config: ZiggyConfig | None = None,
                               progress: ProgressCallback | None = None
                               ) -> CharacterizationResult:
        """Characterize an explicit :class:`Selection` (the core path).

        ``progress`` receives staged events (see :data:`ProgressCallback`);
        raising from the callback aborts the run, which is how callers
        implement cancellation of long searches.
        """
        cfg = config if config is not None else self.config
        timings: dict[str, float] = {}
        notes: list[str] = []

        t0 = time.perf_counter()
        prepared = self._preparation.prepare(selection, cfg)
        timings["preparation"] = time.perf_counter() - t0
        notes.extend(prepared.notes)
        self.last_prepared = prepared
        if progress is not None:
            progress("preparation", prepared)

        t1 = time.perf_counter()
        on_view = None
        if progress is not None:
            on_view = lambda vr: progress("view", vr)  # noqa: E731
        search = ViewSearcher(cfg).search(prepared, on_view=on_view)
        timings["view_search"] = time.perf_counter() - t1
        notes.extend(search.notes)
        self.last_search = search
        if progress is not None:
            progress("search", search)

        t2 = time.perf_counter()
        validated, val_notes = validate_views(
            search.views, cfg, n_candidates=search.n_candidates)
        explained = ExplanationGenerator(cfg).annotate(validated)
        timings["post_processing"] = time.perf_counter() - t2
        notes.extend(val_notes)

        predicate_text = (selection.predicate.canonical()
                          if selection.predicate is not None else "TRUE")
        result = CharacterizationResult(
            views=tuple(explained),
            n_inside=selection.n_inside,
            n_outside=selection.n_outside,
            n_columns_considered=len(prepared.active_columns),
            timings=timings,
            predicate=predicate_text,
            notes=tuple(notes),
        )
        if progress is not None:
            progress("result", result)
        return result

    # -- introspection -----------------------------------------------------------

    def dendrogram_text(self) -> str | None:
        """ASCII dendrogram of the last linkage search (tuning support
        for ``MIN_tight``), or None when unavailable."""
        if self.last_search is None or self.last_search.dendrogram is None:
            return None
        return self.last_search.dendrogram.render()

    def cache_counters(self):
        """The shared cache's hit/miss counters (None when sharing off)."""
        return self.cache.counters if self.cache is not None else None
