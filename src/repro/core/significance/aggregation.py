"""P-value aggregation schemes.

A view carries one p-value per evaluated Zig-Component; the schemes here
combine them into a single view-level p-value.  "min" reproduces the
paper's "retains the lowest value" (optimistic, no multiplicity control);
Bonferroni is the correction the paper names; Holm and Fisher round out
the standard toolbox.
"""

from __future__ import annotations

import math
from typing import Sequence

from scipy import stats as sps

from repro.errors import ConfigError


def _validated(p_values: Sequence[float]) -> list[float]:
    out = []
    for p in p_values:
        if p != p:
            continue  # NaN: a component without a test contributes nothing
        if not 0.0 <= p <= 1.0 + 1e-12:
            raise ValueError(f"p-value out of range: {p}")
        out.append(min(1.0, max(0.0, float(p))))
    return out


def minimum(p_values: Sequence[float]) -> float:
    """The smallest p-value, uncorrected (the paper's "lowest value")."""
    ps = _validated(p_values)
    return min(ps) if ps else 1.0


def bonferroni(p_values: Sequence[float]) -> float:
    """Bonferroni-corrected minimum: ``min(1, m * min_p)``.

    Controls the family-wise error rate across a view's ``m`` components
    — the paper's named "more advanced aggregation scheme".
    """
    ps = _validated(p_values)
    if not ps:
        return 1.0
    return min(1.0, len(ps) * min(ps))


def holm(p_values: Sequence[float]) -> float:
    """Holm step-down adjusted minimum.

    Uniformly more powerful than Bonferroni while controlling the same
    family-wise error rate; the view-level p is the smallest adjusted
    p-value.
    """
    ps = sorted(_validated(p_values))
    if not ps:
        return 1.0
    m = len(ps)
    adjusted = []
    running = 0.0
    for k, p in enumerate(ps):
        value = min(1.0, (m - k) * p)
        running = max(running, value)  # enforce monotonicity
        adjusted.append(running)
    return adjusted[0]


def fisher_combination(p_values: Sequence[float]) -> float:
    """Fisher's method: ``-2 * sum(ln p) ~ chi2(2m)`` under the null.

    Pools evidence across components instead of keying on the single
    best one — appropriate when a view is "mildly unusual everywhere".
    """
    ps = _validated(p_values)
    if not ps:
        return 1.0
    statistic = 0.0
    for p in ps:
        statistic += -2.0 * math.log(max(p, 1e-300))
    return float(sps.chi2.sf(statistic, 2 * len(ps)))


_SCHEMES = {
    "min": minimum,
    "bonferroni": bonferroni,
    "holm": holm,
    "fisher": fisher_combination,
}


def aggregate_p_values(p_values: Sequence[float], scheme: str) -> float:
    """Dispatch to the named aggregation scheme."""
    fn = _SCHEMES.get(scheme)
    if fn is None:
        raise ConfigError(
            f"unknown aggregation scheme {scheme!r}; "
            f"available: {', '.join(sorted(_SCHEMES))}")
    return fn(p_values)
