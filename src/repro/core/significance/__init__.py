"""Post-processing: statistical robustness of the views.

Section 3: "During the final phase, Ziggy evaluates the statistical
robustness of the views.  The aim is to control spurious findings, that
is, differences caused by chance.  For each view, it tests the
significance of the Zig-Component separately, using asymptotic bounds
from the literature.  Then it aggregates the confidence scores associated
with each component.  Depending on the users' preferences, it retains the
lowest value, or it uses more advanced aggregation schemes such as the
Bonferroni correction."

The per-component tests live with the components themselves (each
component knows its own asymptotic bound); this package aggregates their
p-values and applies the spurious-view filter.
"""

from repro.core.significance.aggregation import (
    aggregate_p_values,
    bonferroni,
    holm,
    fisher_combination,
)
from repro.core.significance.validator import validate_views

__all__ = [
    "aggregate_p_values",
    "bonferroni",
    "holm",
    "fisher_combination",
    "validate_views",
]
