"""The spurious-view filter."""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import ZiggyConfig
from repro.core.significance.aggregation import aggregate_p_values
from repro.core.views import ViewResult


def validate_views(views: list[ViewResult], config: ZiggyConfig,
                   n_candidates: int = 1
                   ) -> tuple[list[ViewResult], list[str]]:
    """Attach aggregated p-values and apply the significance filter.

    Returns the surviving views (all of them, flagged, when
    ``config.significance_filter`` is off) plus diagnostic notes.  Views
    whose components all lack tests aggregate to p = 1 and are therefore
    dropped by the filter — a view with no verifiable evidence is exactly
    the "spurious finding" the stage exists to control.

    Args:
        n_candidates: number of views the search *scored* (not just the
            ones returned).  Under ``multiplicity="table_wide"`` the
            aggregated p is Bonferroni-corrected by this count, bounding
            the expected false-view count per query by ``alpha``.
    """
    validated: list[ViewResult] = []
    dropped = 0
    family = max(int(n_candidates), 1)
    for result in views:
        p_values = [c.p_value for c in result.components if c.test is not None]
        p = aggregate_p_values(p_values, config.aggregation)
        if config.multiplicity == "table_wide":
            p = min(1.0, p * family)
        significant = p <= config.alpha
        if config.significance_filter and not significant:
            dropped += 1
            continue
        validated.append(replace(result, p_value=p, significant=significant))
    notes = []
    if dropped:
        notes.append(
            f"significance filter dropped {dropped} view(s) at "
            f"alpha={config.alpha} ({config.aggregation} aggregation)")
    return validated, notes
