"""The characterization core — Ziggy's primary contribution.

Subpackages implement the three pipeline stages of Figure 4:

* **Preparation**: :mod:`repro.core.components` (Zig-Components — effect
  sizes per column and column pair), :mod:`repro.core.dependency` (the
  tightness measure ``S``) and :mod:`repro.core.stats_cache` (cross-query
  computation sharing).
* **View search**: :mod:`repro.core.search` (dependency graph,
  complete-linkage clustering with dendrogram, clique enumeration,
  constraint handling and ranking) scored by
  :mod:`repro.core.dissimilarity` (the Zig-Dissimilarity).
* **Post-processing**: :mod:`repro.core.significance` (asymptotic tests
  and p-value aggregation) and :mod:`repro.core.explain` (rule-based
  natural-language explanations).

:class:`repro.core.pipeline.Ziggy` ties the stages together.
"""

from repro.core.config import ZiggyConfig
from repro.core.events import STAGE_KINDS, StageEvent, legacy_stage
from repro.core.views import View, ComponentScore, ViewResult, CharacterizationResult
from repro.core.pipeline import CharacterizationPlan, PlanExecutor, Ziggy

__all__ = [
    "ZiggyConfig",
    "View",
    "ComponentScore",
    "ViewResult",
    "CharacterizationResult",
    "Ziggy",
    "CharacterizationPlan",
    "PlanExecutor",
    "StageEvent",
    "STAGE_KINDS",
    "legacy_stage",
]
