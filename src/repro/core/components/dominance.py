"""Optional non-parametric dominance component.

Not part of the paper's illustrated set but a natural extension component
(the registry is explicitly pluggable).  Disabled by default — give it a
positive weight in :attr:`ZiggyConfig.weights` to activate it.
"""

from __future__ import annotations

from repro.core.components.base import ColumnSlice, ComponentOutcome, ZigComponent
from repro.errors import StatsError
from repro.stats.effect_sizes import cliffs_delta
from repro.stats.tests_ import mann_whitney_u_test


class DominanceComponent(ZigComponent):
    """Cliff's delta: stochastic dominance of the selection.

    Effect size: ``P(X_in > X_out) - P(X_in < X_out)`` in [-1, 1].
    Significance: Mann–Whitney U (normal approximation, tie-corrected).
    Requires raw values; slices reconstructed purely from cached moments
    skip it.
    """

    name = "dominance"
    arity = 1
    applies_to_numeric = True
    applies_to_categorical = False

    def compute(self, data: ColumnSlice) -> ComponentOutcome | None:
        if data.inside is None or data.outside is None:
            return None
        try:
            delta = cliffs_delta(data.inside, data.outside)
            test = mann_whitney_u_test(data.inside, data.outside)
        except StatsError:
            return None
        return ComponentOutcome(
            raw=delta,
            direction="higher" if delta >= 0 else "lower",
            test=test,
            detail={"cliffs_delta": delta},
        )
