"""Numeric Zig-Components: the first two panels of Figure 3."""

from __future__ import annotations

from repro.core.components.base import ColumnSlice, ComponentOutcome, ZigComponent
from repro.errors import StatsError
from repro.stats.effect_sizes import hedges_g, log_sd_ratio
from repro.stats.tests_ import f_test_variances, levene_test, welch_t_test


class MeanShiftComponent(ZigComponent):
    """Difference between the means (Fig. 3, first Zig-Component).

    Effect size: Hedges' g (bias-corrected standardized mean difference,
    inside minus outside).  Significance: Welch's t-test.
    """

    name = "mean_shift"
    arity = 1
    applies_to_numeric = True
    applies_to_categorical = False

    def compute(self, data: ColumnSlice) -> ComponentOutcome | None:
        data.ensure_stats()
        a, b = data.inside_stats, data.outside_stats
        if a is None or b is None or a.n < 2 or b.n < 2:
            return None
        try:
            g = hedges_g(a, b)
            test = welch_t_test(a, b)
        except StatsError:
            return None
        if g != g:
            return None
        return ComponentOutcome(
            raw=g,
            direction="higher" if g >= 0 else "lower",
            test=test,
            detail={
                "mean_inside": a.mean,
                "mean_outside": b.mean,
                "sd_inside": a.std,
                "sd_outside": b.std,
            },
        )


class SpreadShiftComponent(ZigComponent):
    """Difference between the standard deviations (Fig. 3, second panel).

    Effect size: log SD ratio ``ln(sd_in / sd_out)``.  Significance:
    Brown–Forsythe (Levene) when raw values are available, falling back
    to the moment-based F-test when the slice came from cached sufficient
    statistics only.
    """

    name = "spread_shift"
    arity = 1
    applies_to_numeric = True
    applies_to_categorical = False

    def compute(self, data: ColumnSlice) -> ComponentOutcome | None:
        data.ensure_stats()
        a, b = data.inside_stats, data.outside_stats
        if a is None or b is None or a.n < 2 or b.n < 2:
            return None
        try:
            ratio = log_sd_ratio(a, b)
        except StatsError:
            return None
        test = None
        if data.inside is not None and data.outside is not None:
            try:
                test = levene_test(data.inside, data.outside)
            except StatsError:
                test = None
        if test is None:
            try:
                test = f_test_variances(a, b)
            except StatsError:
                return None
        return ComponentOutcome(
            raw=ratio,
            direction="higher" if ratio >= 0 else "lower",
            test=test,
            detail={
                "sd_inside": a.std,
                "sd_outside": b.std,
            },
        )
