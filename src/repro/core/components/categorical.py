"""Categorical Zig-Component: frequency-profile shift.

The demo paper defers categorical components to the full paper ("We refer
the interested reader to our full paper for other examples of
Zig-Components (e.g., involving categorical data)").  We implement the
canonical choice: compare the category frequency profiles of the two
groups with the total variation distance, tested by Pearson's χ².
"""

from __future__ import annotations

import numpy as np

from repro.core.components.base import ColumnSlice, ComponentOutcome, ZigComponent
from repro.errors import StatsError
from repro.stats.effect_sizes import total_variation_distance
from repro.stats.tests_ import chi2_independence_test


class FrequencyShiftComponent(ZigComponent):
    """Total variation distance between category frequency profiles.

    Effect size in [0, 1] (0 = identical profiles).  Significance: χ²
    independence test on the 2 x k contingency table with weak-cell
    pooling.  The detail dict carries the categories with the largest
    proportion gaps, which the explanation generator names explicitly
    ("over-represented: 'Comedy', 'Horror'").
    """

    name = "frequency_shift"
    arity = 1
    applies_to_numeric = False
    applies_to_categorical = True

    #: How many over/under-represented categories to surface in details.
    top_categories = 3

    def compute(self, data: ColumnSlice) -> ComponentOutcome | None:
        pi, po = data.inside_profile, data.outside_profile
        if pi is None or po is None or pi.n == 0 or po.n == 0:
            return None
        p, q = pi.aligned_with(po)
        if p.size < 2:
            return None
        tv = total_variation_distance(p, q)
        # Rebuild aligned counts for the chi2 table.
        union: list = list(pi.categories)
        seen = set(union)
        for cat in po.categories:
            if cat not in seen:
                union.append(cat)
                seen.add(cat)
        counts_in = {c: int(k) for c, k in zip(pi.categories, pi.counts)}
        counts_out = {c: int(k) for c, k in zip(po.categories, po.counts)}
        table = np.array(
            [[counts_in.get(c, 0) for c in union],
             [counts_out.get(c, 0) for c in union]], dtype=np.float64)
        try:
            test = chi2_independence_test(table)
        except (StatsError, ValueError):
            test = None
        gaps = p - q
        order = np.argsort(-gaps)
        over = [(union[i], float(gaps[i])) for i in order[: self.top_categories]
                if gaps[i] > 0]
        under = [(union[i], float(gaps[i]))
                 for i in order[::-1][: self.top_categories] if gaps[i] < 0]
        return ComponentOutcome(
            raw=tv,
            direction="different",
            test=test,
            detail={
                "over_represented": over,
                "under_represented": under,
                "mode_inside": pi.mode(),
                "mode_outside": po.mode(),
                "n_categories": len(union),
            },
        )
