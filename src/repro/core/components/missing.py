"""Missingness Zig-Component.

Missing values are first-class signal in exploration data (a selection
where a sensor column is suddenly empty is a finding, not a nuisance), so
the difference of missing-value rates is a component of its own.
"""

from __future__ import annotations

from repro.core.components.base import ColumnSlice, ComponentOutcome, ZigComponent
from repro.errors import StatsError
from repro.stats.effect_sizes import proportion_gap
from repro.stats.tests_ import two_proportion_z_test


class MissingShiftComponent(ZigComponent):
    """Difference between missing-value rates (inside minus outside).

    Effect size: the raw rate gap in [-1, 1].  Significance: pooled
    two-proportion z-test.  Returns None when neither group has any
    missing values — a zero-information component would only dilute the
    view score.
    """

    name = "missing_shift"
    arity = 1
    applies_to_numeric = True
    applies_to_categorical = True

    def compute(self, data: ColumnSlice) -> ComponentOutcome | None:
        if data.is_categorical:
            pi, po = data.inside_profile, data.outside_profile
            if pi is None or po is None:
                return None
            k_in, n_in = pi.n_missing, pi.n + pi.n_missing
            k_out, n_out = po.n_missing, po.n + po.n_missing
        else:
            data.ensure_stats()
            a, b = data.inside_stats, data.outside_stats
            if a is None or b is None:
                return None
            k_in, n_in = a.n_missing, a.total
            k_out, n_out = b.n_missing, b.total
        if n_in == 0 or n_out == 0:
            return None
        if k_in == 0 and k_out == 0:
            return None
        try:
            gap = proportion_gap(k_in, n_in, k_out, n_out)
            test = two_proportion_z_test(k_in, n_in, k_out, n_out)
        except StatsError:
            return None
        return ComponentOutcome(
            raw=gap,
            direction="higher" if gap >= 0 else "lower",
            test=test,
            detail={
                "rate_inside": k_in / n_in,
                "rate_outside": k_out / n_out,
            },
        )
