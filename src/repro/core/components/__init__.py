"""Zig-Components: simple, verifiable indicators of dissimilarity.

Section 2.2 of the paper: "The idea behind the Zig-Dissimilarity is to
compute several simple indicators of dissimilarity, the Zig-Components,
and aggregate them into one synthetic score. ... Most of our
Zig-Components come from the statistics literature, where they are
referred to as effect sizes."

Each component is a small strategy object that, given the inside/outside
slices of one column (arity 1) or one column pair (arity 2), produces a
signed raw effect, a significance test and display details.  Components
are looked up through a registry so users can plug their own (the weights
mechanism in :class:`~repro.core.config.ZiggyConfig` then applies to them
like to any built-in).
"""

from repro.core.components.base import (
    ColumnSlice,
    PairSlice,
    ComponentOutcome,
    ZigComponent,
    ComponentRegistry,
    default_registry,
    DEFAULT_COMPONENTS,
)
from repro.core.components.numeric import MeanShiftComponent, SpreadShiftComponent
from repro.core.components.dominance import DominanceComponent
from repro.core.components.shape import SkewShiftComponent
from repro.core.components.correlation import CorrelationShiftComponent
from repro.core.components.categorical import FrequencyShiftComponent
from repro.core.components.missing import MissingShiftComponent

__all__ = [
    "ColumnSlice",
    "PairSlice",
    "ComponentOutcome",
    "ZigComponent",
    "ComponentRegistry",
    "default_registry",
    "DEFAULT_COMPONENTS",
    "MeanShiftComponent",
    "SpreadShiftComponent",
    "DominanceComponent",
    "SkewShiftComponent",
    "CorrelationShiftComponent",
    "FrequencyShiftComponent",
    "MissingShiftComponent",
]
