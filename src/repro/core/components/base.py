"""Component framework: data slices, outcomes, the ABC and the registry."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ComponentError, UnknownComponentError
from repro.stats.descriptive import SummaryStats, summarize
from repro.stats.histogram import FrequencyProfile
from repro.stats.tests_ import TestResult


@dataclass
class ColumnSlice:
    """One column split into the selection and its complement.

    For numeric/boolean columns ``inside``/``outside`` are float64 arrays
    (NaN = missing) and the summaries are populated; for categorical
    columns they are code arrays and the frequency profiles are
    populated.  Raw arrays may be ``None`` when the slice was
    reconstructed from cached sufficient statistics — components must
    degrade gracefully (e.g. the spread component falls back from Levene
    to the F-test).
    """

    name: str
    is_categorical: bool
    inside: np.ndarray | None = None
    outside: np.ndarray | None = None
    inside_stats: SummaryStats | None = None
    outside_stats: SummaryStats | None = None
    inside_profile: FrequencyProfile | None = None
    outside_profile: FrequencyProfile | None = None

    def ensure_stats(self) -> None:
        """Fill the numeric summaries from raw arrays when absent."""
        if self.is_categorical:
            return
        if self.inside_stats is None and self.inside is not None:
            self.inside_stats = summarize(self.inside)
        if self.outside_stats is None and self.outside is not None:
            self.outside_stats = summarize(self.outside)


@dataclass
class PairSlice:
    """A column pair with per-group correlation coefficients.

    ``n_inside``/``n_outside`` are the complete-pair counts the Fisher
    test needs (rows where both values are present).
    """

    x: ColumnSlice
    y: ColumnSlice
    r_inside: float
    r_outside: float
    n_inside: int
    n_outside: int

    @property
    def names(self) -> tuple[str, str]:
        """The pair's column names, sorted."""
        return tuple(sorted((self.x.name, self.y.name)))  # type: ignore[return-value]


@dataclass(frozen=True)
class ComponentOutcome:
    """Raw result of one component evaluation (before normalization).

    Attributes:
        raw: the signed effect size, inside minus outside.
        direction: "higher" / "lower" / "different" (for explanations).
        test: significance test, or None when it could not run.
        detail: extras for rendering (means, proportions, coefficients).
    """

    raw: float
    direction: str
    test: TestResult | None = None
    detail: dict = field(default_factory=dict)


class ZigComponent:
    """Base class for Zig-Components.

    Subclasses set :attr:`name`, :attr:`arity` (1 for per-column, 2 for
    per-pair) and the applicability flags, and implement
    :meth:`compute`, returning ``None`` when the component does not apply
    to this slice (wrong type, degenerate data, nothing to report).
    Returning ``None`` — rather than raising — is the contract because
    sliced exploration data is full of constant and near-empty columns
    and a single bad column must never abort characterization.
    """

    name: str = ""
    arity: int = 1
    applies_to_numeric: bool = True
    applies_to_categorical: bool = False

    def compute(self, data: ColumnSlice | PairSlice) -> ComponentOutcome | None:
        """Evaluate the component on one slice; None when inapplicable."""
        raise NotImplementedError

    def applicable(self, data: ColumnSlice | PairSlice) -> bool:
        """Type-level applicability check (data-level checks in compute)."""
        if self.arity == 1:
            if not isinstance(data, ColumnSlice):
                return False
            if data.is_categorical:
                return self.applies_to_categorical
            return self.applies_to_numeric
        if not isinstance(data, PairSlice):
            return False
        return not data.x.is_categorical and not data.y.is_categorical

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ZigComponent {self.name} arity={self.arity}>"


class ComponentRegistry:
    """Name-indexed collection of component instances.

    The default registry carries the paper's component set; users build
    their own (or extend a copy) to add custom effect sizes::

        registry = default_registry().copy()
        registry.register(MyTailWeightComponent())
    """

    def __init__(self):
        self._components: dict[str, ZigComponent] = {}

    def register(self, component: ZigComponent, replace: bool = False) -> None:
        """Add a component; refuses silent overwrites unless ``replace``."""
        if not component.name:
            raise ComponentError("component must declare a non-empty name")
        if component.arity not in (1, 2):
            raise ComponentError(
                f"component {component.name!r} has invalid arity "
                f"{component.arity} (must be 1 or 2)")
        if component.name in self._components and not replace:
            raise ComponentError(
                f"component {component.name!r} already registered "
                "(pass replace=True to overwrite)")
        self._components[component.name] = component

    def get(self, name: str) -> ZigComponent:
        """Look up a component by name."""
        comp = self._components.get(name)
        if comp is None:
            raise UnknownComponentError(name, tuple(self._components))
        return comp

    def names(self) -> tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._components))

    def unary(self) -> tuple[ZigComponent, ...]:
        """All arity-1 components."""
        return tuple(c for c in self._components.values() if c.arity == 1)

    def pairwise(self) -> tuple[ZigComponent, ...]:
        """All arity-2 components."""
        return tuple(c for c in self._components.values() if c.arity == 2)

    def copy(self) -> "ComponentRegistry":
        """Shallow copy (component instances are stateless and shared)."""
        out = ComponentRegistry()
        out._components = dict(self._components)
        return out

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def __len__(self) -> int:
        return len(self._components)


#: Names of the components active by default — the set the paper
#: describes: mean difference, SD difference, correlation difference
#: (Fig. 3) plus the categorical and missingness analogues mentioned for
#: the full paper.
DEFAULT_COMPONENTS = (
    "mean_shift",
    "spread_shift",
    "correlation_shift",
    "frequency_shift",
    "missing_shift",
)


def default_registry() -> ComponentRegistry:
    """Build a registry with the paper's default component set plus the
    optional extension components (dominance, skew shift) — registered
    but inactive until the user weights them."""
    from repro.core.components.categorical import FrequencyShiftComponent
    from repro.core.components.correlation import CorrelationShiftComponent
    from repro.core.components.dominance import DominanceComponent
    from repro.core.components.missing import MissingShiftComponent
    from repro.core.components.numeric import (
        MeanShiftComponent,
        SpreadShiftComponent,
    )
    from repro.core.components.shape import SkewShiftComponent

    registry = ComponentRegistry()
    registry.register(MeanShiftComponent())
    registry.register(SpreadShiftComponent())
    registry.register(CorrelationShiftComponent())
    registry.register(FrequencyShiftComponent())
    registry.register(MissingShiftComponent())
    registry.register(DominanceComponent())
    registry.register(SkewShiftComponent())
    return registry
