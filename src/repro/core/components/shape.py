"""Optional distribution-shape Zig-Component: skewness shift.

An extension component (the registry is explicitly pluggable): compares
the *asymmetry* of the two groups.  A selection whose values pile
against one edge (e.g. "cheap flights" selections hugging the price
floor) shows a skewness shift even when mean and spread barely move.

Disabled by default; give it a positive weight in
:attr:`ZiggyConfig.weights` to activate it.
"""

from __future__ import annotations

import numpy as np

from repro.core.components.base import ColumnSlice, ComponentOutcome, ZigComponent
from repro.errors import StatsError
from repro.stats.tests_ import mann_whitney_u_test


class SkewShiftComponent(ZigComponent):
    """Difference of adjusted Fisher–Pearson skewness, inside - outside.

    Significance proxy: Mann–Whitney on cubed standardized deviations
    (sensitive to asymmetry shifts, robust to pure location/scale moves).
    Requires raw values for the test; pure-summary slices still get the
    effect (tests become None and the validator treats the component as
    unverified).
    """

    name = "skew_shift"
    arity = 1
    applies_to_numeric = True
    applies_to_categorical = False

    #: Minimum per-group size for a stable skewness estimate.
    min_n = 12

    def compute(self, data: ColumnSlice) -> ComponentOutcome | None:
        data.ensure_stats()
        a, b = data.inside_stats, data.outside_stats
        if a is None or b is None or a.n < self.min_n or b.n < self.min_n:
            return None
        gap = a.skewness - b.skewness
        if gap != gap:
            return None
        test = None
        if data.inside is not None and data.outside is not None:
            try:
                dev_in = self._cubed_deviations(data.inside, a.mean, a.std)
                dev_out = self._cubed_deviations(data.outside, b.mean, b.std)
                test = mann_whitney_u_test(dev_in, dev_out)
            except StatsError:
                test = None
        return ComponentOutcome(
            raw=gap,
            direction="higher" if gap >= 0 else "lower",
            test=test,
            detail={"skewness_inside": a.skewness,
                    "skewness_outside": b.skewness},
        )

    @staticmethod
    def _cubed_deviations(values: np.ndarray, mean: float,
                          std: float) -> np.ndarray:
        scale = std if std and std == std else 1.0
        z = (values - mean) / scale
        return z ** 3
