"""The pairwise Zig-Component: difference of correlation coefficients.

Figure 3, third panel — the component that makes Ziggy's views
two-dimensional: "Observe that we test dissimilarities in spaces with one
but also two dimensions.  For instance, the difference between the
correlation coefficients involves two columns."
"""

from __future__ import annotations

from repro.core.components.base import ComponentOutcome, PairSlice, ZigComponent
from repro.errors import StatsError
from repro.stats.effect_sizes import correlation_gap
from repro.stats.tests_ import fisher_z_test


class CorrelationShiftComponent(ZigComponent):
    """Fisher-z gap between the inside and outside correlations.

    Effect size: ``atanh(r_in) - atanh(r_out)``.  Significance: the
    two-sample Fisher z-test with SE ``sqrt(1/(n1-3) + 1/(n2-3))``.
    """

    name = "correlation_shift"
    arity = 2
    applies_to_numeric = True
    applies_to_categorical = False

    #: Minimum complete pairs per group for the asymptotic test.
    min_pairs = 4

    def compute(self, data: PairSlice) -> ComponentOutcome | None:
        if data.n_inside < self.min_pairs or data.n_outside < self.min_pairs:
            return None
        r_in, r_out = data.r_inside, data.r_outside
        if r_in != r_in or r_out != r_out:
            return None
        try:
            gap = correlation_gap(None, None, None, None,
                                  precomputed=(r_in, r_out))
            test = fisher_z_test(r_in, data.n_inside, r_out, data.n_outside)
        except StatsError:
            return None
        if abs(r_in) >= abs(r_out):
            direction = "stronger" if r_in * r_out >= 0 else "reversed"
        else:
            direction = "weaker"
        return ComponentOutcome(
            raw=gap,
            direction=direction,
            test=test,
            detail={
                "r_inside": r_in,
                "r_outside": r_out,
                "n_inside": data.n_inside,
                "n_outside": data.n_outside,
            },
        )
