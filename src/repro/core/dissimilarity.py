"""The Zig-Dissimilarity: normalize Zig-Components and aggregate them.

Section 2.2: "To aggregate the Zig-Components, we normalize them and
compute a weighted sum.  The normalization enforces that the indicators
have comparable scale.  The weights in the final sum are defined by the
user."

Normalization operates *per component type*, against the empirical
distribution of that component's magnitude across everything it was
evaluated on (every column for unary components, every tight pair for
pairwise ones).  Three schemes are provided:

* ``robust_z`` (default): ``max(0, (|raw| - median) / MAD)`` — keeps
  magnitude information, robust to the heavy-tailed score distributions
  wide tables produce;
* ``rank``: percentile of ``|raw|`` within the population, in [0, 1];
* ``none``: ``|raw|`` unchanged (useful for debugging and for components
  that are already on a common scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.components.base import ComponentOutcome
from repro.core.config import ZiggyConfig
from repro.core.views import ComponentScore, View
from repro.errors import ConfigError
from repro.stats.robust import iqr as _iqr, mad as _mad


@dataclass(frozen=True)
class Normalizer:
    """Maps a raw component magnitude onto the common score scale."""

    method: str
    center: float = 0.0
    scale: float = 1.0
    population: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def normalize(self, raw: float) -> float:
        """Normalized magnitude (always >= 0)."""
        magnitude = abs(raw)
        if self.method == "none":
            return magnitude
        if self.method == "rank":
            if self.population.size == 0:
                return 0.0
            below = float((self.population <= magnitude + 1e-15).sum())
            return below / self.population.size
        # robust_z
        z = (magnitude - self.center) / self.scale
        return max(0.0, z)


def build_normalizer(raw_values: list[float], method: str) -> Normalizer:
    """Fit a :class:`Normalizer` on one component's raw magnitudes."""
    mags = np.abs(np.asarray([v for v in raw_values if v == v], dtype=np.float64))
    if method == "none":
        return Normalizer(method="none")
    if method == "rank":
        return Normalizer(method="rank", population=np.sort(mags))
    if method != "robust_z":
        raise ConfigError(f"unknown normalization {method!r}")
    if mags.size == 0:
        return Normalizer(method="robust_z", center=0.0, scale=1.0)
    center = float(np.median(mags))
    scale = _mad(mags)
    if scale <= 0.0:
        scale = _iqr(mags) / 1.349 if mags.size >= 4 else 0.0
    if scale <= 0.0:
        scale = float(np.std(mags)) if mags.size >= 2 else 0.0
    if scale <= 0.0 or scale != scale:
        # Entire population is (near-)identical: fall back to unit scale
        # so a genuinely larger newcomer still scores above zero.
        scale = max(center, 1.0)
    return Normalizer(method="robust_z", center=center, scale=scale)


@dataclass
class ComponentCatalog:
    """All evaluated component scores, indexed for view scoring.

    Attributes:
        unary: per-column component scores.
        pairwise: per-pair component scores, keyed by the sorted name
            pair.
        notes: human-readable diagnostics from the evaluation pass.
    """

    unary: dict[str, list[ComponentScore]] = field(default_factory=dict)
    pairwise: dict[tuple[str, str], list[ComponentScore]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def components_for_view(self, view: View) -> tuple[ComponentScore, ...]:
        """Every component score attached to the view's columns/pairs."""
        out: list[ComponentScore] = []
        for col in view.columns:
            out.extend(self.unary.get(col, ()))
        cols = view.columns
        for i in range(len(cols)):
            for j in range(i + 1, len(cols)):
                key = tuple(sorted((cols[i], cols[j])))
                out.extend(self.pairwise.get(key, ()))
        return tuple(out)

    def column_score(self, column: str) -> float:
        """Best weighted score of a single column (used for trimming
        oversized clusters)."""
        scores = [c.weighted for c in self.unary.get(column, ())]
        return max(scores) if scores else 0.0


def make_component_score(component_name: str, columns: tuple[str, ...],
                         outcome: ComponentOutcome, normalizer: Normalizer,
                         weight: float) -> ComponentScore:
    """Assemble the public :class:`ComponentScore` from a raw outcome."""
    return ComponentScore(
        component=component_name,
        columns=tuple(columns),
        raw=outcome.raw,
        normalized=normalizer.normalize(outcome.raw),
        weight=weight,
        test=outcome.test,
        direction=outcome.direction,
        detail=dict(outcome.detail),
    )


def zig_dissimilarity(components: tuple[ComponentScore, ...],
                      config: ZiggyConfig) -> float:
    """Aggregate a view's component scores into the final view score.

    Weighted sum (Eq. 1's ``score``) — divided by the total weight when
    ``score_mode == "mean"`` so views of different dimension compete on
    per-indicator strength rather than on sheer component count.
    """
    total_weight = 0.0
    total = 0.0
    for comp in components:
        if comp.weight <= 0.0:
            continue
        total += comp.weighted
        total_weight += comp.weight
    if total_weight == 0.0:
        return 0.0
    if config.score_mode == "sum":
        return total
    return total / total_weight


def score_view(view: View, catalog: ComponentCatalog,
               config: ZiggyConfig) -> tuple[float, tuple[ComponentScore, ...]]:
    """Score one candidate view: (Zig-Dissimilarity, its components)."""
    components = catalog.components_for_view(view)
    return zig_dissimilarity(components, config), components
