"""Configuration for the Ziggy pipeline.

Every knob the paper exposes is here: the view dimension cap ``D``
(Section 2.1), the tightness threshold ``MIN_tight`` (Eq. 3), the
user-defined component weights (Section 2.2: "The weights in the final
sum are defined by the user"), the dependency measure ``S`` (Eq. 2), the
p-value aggregation scheme (Section 3: "it retains the lowest value, or
... Bonferroni correction") and the search strategy (clustering vs clique
search, Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError

#: Recognized dependency measures for view tightness.
DEPENDENCY_METHODS = ("pearson", "spearman", "nmi")

#: Recognized candidate-generation strategies.
SEARCH_STRATEGIES = ("linkage", "clique")

#: Recognized component-normalization schemes.
NORMALIZATIONS = ("robust_z", "rank", "none")

#: Recognized p-value aggregation schemes.
AGGREGATIONS = ("min", "bonferroni", "holm", "fisher")

#: Recognized multiple-testing scopes.
MULTIPLICITY_SCOPES = ("per_view", "table_wide")

#: Recognized view scoring modes (how component scores combine).
SCORE_MODES = ("mean", "sum")

#: Recognized sketch-tier modes.
SKETCH_TIERS = ("auto", "off")


@dataclass(frozen=True)
class ZiggyConfig:
    """All tunables of the characterization pipeline.

    Attributes:
        max_view_dim: ``D`` — the dimension cap per view.  The paper uses
            purposely low-dimensional views so users can plot them; 2 is
            the default (scatter-plot-able).
        min_tightness: ``MIN_tight`` — minimum pairwise dependency within
            a view, in [0, 1].
        max_views: number of disjoint views to return.
        weights: per-component weights for the Zig-Dissimilarity; missing
            components default to 1.0, a weight of 0 disables a component.
        dependency_method: the measure ``S`` ("pearson", "spearman",
            "nmi" — absolute correlation or normalized mutual information).
        search_strategy: "linkage" (complete-linkage clustering, the
            paper's implementation) or "clique" (maximal cliques on the
            dependency graph, the alternative the paper mentions).
        normalization: how raw component magnitudes are made comparable
            ("robust_z" median/MAD, "rank" percentile, "none").
        aggregation: p-value combination across a view's components
            ("min", "bonferroni", "holm", "fisher").
        multiplicity: scope of the multiple-testing control.
            "per_view" (the paper's scheme) corrects only across one
            view's components, so with C candidate views about
            ``alpha * C`` spurious views still pass on pure-noise data;
            "table_wide" additionally Bonferroni-corrects the aggregated
            view p-value by the number of scored candidates, bounding
            the *per-query* false-view count by alpha (extension,
            measured in the EXT-FPR benchmark).
        alpha: significance level for the spurious-view filter.
        significance_filter: drop views whose aggregated p exceeds
            ``alpha`` (the paper's robustness check); when False the
            p-values are still reported but nothing is dropped.
        include_categorical: include categorical columns (and their
            components) in the search.
        excluded_columns: columns never characterized (ids, the column
            the user queried on, ...).
        exclude_predicate_columns: drop the columns mentioned in the
            WHERE clause from the search (default True — a selection on
            crime rate trivially differs on crime rate; the interesting
            views are elsewhere, as in Fig. 1).
        min_group_size: minimum rows required in both the selection and
            the complement.
        correlation_components: compute pairwise (2-d) components; can be
            disabled to measure their cost (they "add marginal accuracy
            gains ... at the cost of significant processing times").
        score_mode: combine a view's normalized component scores by
            weighted "mean" or "sum".
        mi_bins: bins per axis for the NMI dependency estimator.
        explanation_components: how many top components each explanation
            verbalizes.
        sample_rows: when set and the table is larger, preparation runs
            on a stratified row sample of this size (selection and
            complement sampled proportionally, deterministic seed) — the
            BlinkDB-style speed/accuracy trade-off the paper's
            introduction cites.  None (default) = exact.
        sketch_tier: "auto" (default) lets preparation answer component
            scoring from a table's sketch (reservoir sample + streaming
            moments) when the shared cache is tiered and the sketch's
            error bound is decisive; "off" forces the exact tier
            everywhere.  Tables no larger than the sketch capacity are
            always exact regardless (the sketch covers every row there,
            so there is nothing to approximate).
        sketch_margin: the decisiveness bound for sketch answers — the
            largest acceptable half-width of a sketched mean in
            standard-deviation units (``1.96 / sqrt(k)`` for ``k``
            sampled values).  Groups whose sample cannot reach this
            margin fall back to the exact scan.
        random_seed: seed for any subsampled estimator (Cliff's delta,
            row sampling).
    """

    max_view_dim: int = 2
    min_tightness: float = 0.35
    max_views: int = 8
    weights: dict[str, float] = field(default_factory=dict)
    dependency_method: str = "pearson"
    search_strategy: str = "linkage"
    normalization: str = "robust_z"
    aggregation: str = "bonferroni"
    multiplicity: str = "per_view"
    alpha: float = 0.05
    significance_filter: bool = True
    include_categorical: bool = True
    excluded_columns: tuple[str, ...] = ()
    exclude_predicate_columns: bool = True
    min_group_size: int = 8
    correlation_components: bool = True
    score_mode: str = "mean"
    mi_bins: int = 8
    explanation_components: int = 3
    sample_rows: int | None = None
    sketch_tier: str = "auto"
    sketch_margin: float = 0.1
    random_seed: int = 7

    def __post_init__(self):
        if self.max_view_dim < 1:
            raise ConfigError(f"max_view_dim must be >= 1, got {self.max_view_dim}")
        if not 0.0 <= self.min_tightness <= 1.0:
            raise ConfigError(
                f"min_tightness must be in [0, 1], got {self.min_tightness}")
        if self.max_views < 1:
            raise ConfigError(f"max_views must be >= 1, got {self.max_views}")
        if self.dependency_method not in DEPENDENCY_METHODS:
            raise ConfigError(
                f"dependency_method must be one of {DEPENDENCY_METHODS}, "
                f"got {self.dependency_method!r}")
        if self.search_strategy not in SEARCH_STRATEGIES:
            raise ConfigError(
                f"search_strategy must be one of {SEARCH_STRATEGIES}, "
                f"got {self.search_strategy!r}")
        if self.normalization not in NORMALIZATIONS:
            raise ConfigError(
                f"normalization must be one of {NORMALIZATIONS}, "
                f"got {self.normalization!r}")
        if self.aggregation not in AGGREGATIONS:
            raise ConfigError(
                f"aggregation must be one of {AGGREGATIONS}, "
                f"got {self.aggregation!r}")
        if self.multiplicity not in MULTIPLICITY_SCOPES:
            raise ConfigError(
                f"multiplicity must be one of {MULTIPLICITY_SCOPES}, "
                f"got {self.multiplicity!r}")
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.min_group_size < 2:
            raise ConfigError(
                f"min_group_size must be >= 2, got {self.min_group_size}")
        if self.score_mode not in SCORE_MODES:
            raise ConfigError(
                f"score_mode must be one of {SCORE_MODES}, got {self.score_mode!r}")
        if self.mi_bins < 2:
            raise ConfigError(f"mi_bins must be >= 2, got {self.mi_bins}")
        if self.explanation_components < 1:
            raise ConfigError("explanation_components must be >= 1")
        if self.sketch_tier not in SKETCH_TIERS:
            raise ConfigError(
                f"sketch_tier must be one of {SKETCH_TIERS}, "
                f"got {self.sketch_tier!r}")
        if not 0.0 < self.sketch_margin <= 1.0:
            raise ConfigError(
                f"sketch_margin must be in (0, 1], got {self.sketch_margin}")
        if self.sample_rows is not None and \
                self.sample_rows < 4 * self.min_group_size:
            raise ConfigError(
                f"sample_rows must be at least 4 * min_group_size "
                f"(= {4 * self.min_group_size}), got {self.sample_rows}")
        for name, w in self.weights.items():
            if w < 0:
                raise ConfigError(
                    f"weight for component {name!r} must be >= 0, got {w}")

    def weight_for(self, component_name: str) -> float:
        """The user's weight for a component (default 1.0)."""
        return float(self.weights.get(component_name, 1.0))

    def with_overrides(self, **kwargs) -> "ZiggyConfig":
        """A copy of this config with fields replaced (validated)."""
        return replace(self, **kwargs)
