"""Candidate-view generation from the dendrogram.

Cut the dendrogram at distance ``1 - MIN_tight`` (giving clusters whose
minimum pairwise dependency satisfies Eq. 3 by the complete-linkage
diameter guarantee), then split any cluster larger than the dimension
cap ``D`` by *descending its own subtree* — each further split keeps the
tightest columns together, which is exactly the semantics the dendrogram
encodes.
"""

from __future__ import annotations

from repro.core.config import ZiggyConfig
from repro.core.dissimilarity import ComponentCatalog
from repro.core.search.linkage import Dendrogram, DendrogramNode
from repro.core.views import View


def trim_to_dimension(node: DendrogramNode, labels: tuple[str, ...],
                      max_dim: int) -> list[tuple[str, ...]]:
    """Split a dendrogram node into groups of at most ``max_dim`` leaves.

    Descends the subtree: children small enough become groups, larger
    ones are split recursively.  Leaf order inside each group follows the
    dendrogram, so the tightest columns stay together.
    """
    if node.size <= max_dim:
        return [tuple(labels[i] for i in node.leaves)]
    out: list[tuple[str, ...]] = []
    for child in node.children:
        out.extend(trim_to_dimension(child, labels, max_dim))
    return out


def linkage_candidates(dendrogram: Dendrogram,
                       config: ZiggyConfig,
                       catalog: ComponentCatalog) -> list[View]:
    """Candidate views from the dendrogram cut (deduplicated, in cut order).

    ``catalog`` is accepted for signature parity with the clique strategy
    (which needs scores to trim oversized cliques); the dendrogram split
    needs no scores because the subtree structure already ranks cohesion.
    """
    del catalog  # structure, not scores, drives the linkage split
    cut_height = 1.0 - config.min_tightness
    seen: set[tuple[str, ...]] = set()
    candidates: list[View] = []
    for node in dendrogram.cut_nodes(cut_height):
        for group in trim_to_dimension(node, dendrogram.labels,
                                       config.max_view_dim):
            key = tuple(sorted(group))
            if key in seen:
                continue
            seen.add(key)
            candidates.append(View(columns=key))
    return candidates
