"""Complete-linkage agglomerative clustering, from scratch.

Complete linkage is the paper's partitioning algorithm of choice, and its
key property is exactly the tightness guarantee of Eq. 2-3: a cluster
formed at merge height ``h`` has *diameter* at most ``h`` (every pairwise
distance inside it is <= h).  With distance ``1 - S``, cutting the
dendrogram at ``1 - MIN_tight`` therefore yields groups whose minimum
pairwise dependency is at least ``MIN_tight``.

The implementation is the classic Lance–Williams update specialized to
complete linkage (new distance = max of the two merged rows), vectorized
with numpy: O(M^2) per merge, O(M^3) total — instantaneous for hundreds
of columns, which is the paper's scale (the widest demo dataset has 519).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SearchError


@dataclass
class DendrogramNode:
    """One node of the dendrogram tree.

    Leaves have ``height`` 0 and one leaf index; internal nodes carry the
    merge height (the cluster's diameter bound) and two children.
    """

    node_id: int
    height: float
    leaves: tuple[int, ...]
    children: tuple["DendrogramNode", ...] = ()

    @property
    def is_leaf(self) -> bool:
        """Whether this node is an original observation."""
        return not self.children

    @property
    def size(self) -> int:
        """Number of leaves under this node."""
        return len(self.leaves)


@dataclass
class Dendrogram:
    """The full merge tree over labelled items.

    Attributes:
        labels: item names, indexed by leaf id.
        root: top node (covers all leaves).
        merge_heights: heights in merge order (non-decreasing for
            complete linkage on a proper metric).
    """

    labels: tuple[str, ...]
    root: DendrogramNode
    merge_heights: tuple[float, ...] = field(default_factory=tuple)

    @property
    def n_leaves(self) -> int:
        """Number of clustered items."""
        return len(self.labels)

    def cut(self, height: float) -> list[tuple[str, ...]]:
        """Clusters after cutting all merges strictly above ``height``.

        Every returned group's internal pairwise distance is <= height
        (complete-linkage diameter guarantee).  Groups come back ordered
        by size (largest first), then by first label.
        """
        clusters: list[tuple[str, ...]] = []

        def descend(node: DendrogramNode) -> None:
            if node.height <= height or node.is_leaf:
                clusters.append(tuple(self.labels[i] for i in node.leaves))
                return
            for child in node.children:
                descend(child)

        descend(self.root)
        clusters.sort(key=lambda c: (-len(c), c))
        return clusters

    def cut_nodes(self, height: float) -> list[DendrogramNode]:
        """Like :meth:`cut` but returning the tree nodes themselves."""
        nodes: list[DendrogramNode] = []

        def descend(node: DendrogramNode) -> None:
            if node.height <= height or node.is_leaf:
                nodes.append(node)
                return
            for child in node.children:
                descend(child)

        descend(self.root)
        return nodes

    def render(self, max_label: int = 28) -> str:
        """ASCII dendrogram — the paper's "visual support to help setting
        the parameter MIN_tight"."""
        lines: list[str] = []

        def walk(node: DendrogramNode, prefix: str, is_last: bool) -> None:
            connector = "`-" if is_last else "|-"
            if node.is_leaf:
                label = self.labels[node.leaves[0]][:max_label]
                lines.append(f"{prefix}{connector} {label}")
                return
            similarity = 1.0 - node.height
            lines.append(f"{prefix}{connector}+ d={node.height:.3f} "
                         f"(S>={similarity:.3f}, {node.size} cols)")
            extension = "   " if is_last else "|  "
            for k, child in enumerate(node.children):
                walk(child, prefix + extension, k == len(node.children) - 1)

        walk(self.root, "", True)
        return "\n".join(lines)


def complete_linkage(distance: np.ndarray,
                     labels: tuple[str, ...]) -> Dendrogram:
    """Cluster items given a symmetric distance matrix.

    Args:
        distance: ``(M, M)`` symmetric matrix, zero diagonal; NaNs are
            treated as maximal distance (fully independent columns).
        labels: item names (length M).

    Returns:
        The dendrogram.  A single item yields a trivial one-leaf tree.
    """
    d = np.asarray(distance, dtype=np.float64).copy()
    m = d.shape[0]
    if d.shape != (m, m):
        raise SearchError("distance matrix must be square")
    if len(labels) != m:
        raise SearchError(
            f"got {len(labels)} labels for a {m}x{m} distance matrix")
    if m == 0:
        raise SearchError("cannot cluster zero items")
    with np.errstate(all="ignore"):
        observed_max = np.nanmax(d) if d.size else 1.0
    max_finite = observed_max if np.isfinite(observed_max) else 1.0
    # NaN = unknown dependency: place it strictly above every real
    # distance AND above 1.0, so a cut at any similarity level never
    # groups unknowns.
    d[np.isnan(d)] = max(max_finite, 1.0) + 1.0
    d = np.maximum(d, d.T)  # enforce symmetry defensively
    np.fill_diagonal(d, np.inf)

    nodes: dict[int, DendrogramNode] = {
        i: DendrogramNode(node_id=i, height=0.0, leaves=(i,)) for i in range(m)
    }
    if m == 1:
        return Dendrogram(labels=tuple(labels), root=nodes[0])

    # cluster_of[i]: the current node occupying matrix slot i (or None).
    cluster_of: list[int | None] = list(range(m))
    active = np.ones(m, dtype=bool)
    heights: list[float] = []
    next_id = m
    for _ in range(m - 1):
        sub = d.copy()
        sub[~active, :] = np.inf
        sub[:, ~active] = np.inf
        flat = int(np.argmin(sub))
        i, j = divmod(flat, m)
        height = float(sub[i, j])
        if not np.isfinite(height):  # pragma: no cover - defensive
            raise SearchError("ran out of finite distances while merging")
        if i > j:
            i, j = j, i
        left = nodes[cluster_of[i]]   # type: ignore[index]
        right = nodes[cluster_of[j]]  # type: ignore[index]
        merged = DendrogramNode(
            node_id=next_id,
            height=height,
            leaves=left.leaves + right.leaves,
            children=(left, right),
        )
        nodes[next_id] = merged
        heights.append(height)
        # Lance–Williams for complete linkage: new row = elementwise max.
        new_row = np.maximum(d[i, :], d[j, :])
        d[i, :] = new_row
        d[:, i] = new_row
        d[i, i] = np.inf
        active[j] = False
        cluster_of[i] = next_id
        cluster_of[j] = None
        next_id += 1

    return Dendrogram(labels=tuple(labels), root=nodes[next_id - 1],
                      merge_heights=tuple(heights))
