"""View search — stage 2 of the pipeline.

Section 3: "First, it enumerates the groups of columns which satisfy the
constraints of Equation 5.  It does so with a graph-based algorithm: it
materializes the graph formed by the column's pairwise dependencies, and
partitions it with a clique search or clustering algorithm.  In our
implementation, we used complete linkage clustering.  This method is
simple, well established, and it provides a dendrogram, i.e., visual
support to help setting the parameter.  From this step, Ziggy obtains a
set of candidate views.  It scores them using the Zig-Components obtained
previously, and it ranks the set accordingly."

Both partitioning strategies are implemented: complete-linkage
agglomerative clustering (:mod:`repro.core.search.linkage`, the paper's
choice, with an ASCII dendrogram) and maximal-clique enumeration
(:mod:`repro.core.search.clique`, the alternative it names).
"""

from repro.core.search.linkage import Dendrogram, DendrogramNode, complete_linkage
from repro.core.search.clique import clique_candidates
from repro.core.search.candidates import linkage_candidates, trim_to_dimension
from repro.core.search.ranking import rank_candidates, enforce_disjointness
from repro.core.search.searcher import ViewSearcher, SearchOutput

__all__ = [
    "Dendrogram",
    "DendrogramNode",
    "complete_linkage",
    "clique_candidates",
    "linkage_candidates",
    "trim_to_dimension",
    "rank_candidates",
    "enforce_disjointness",
    "ViewSearcher",
    "SearchOutput",
]
