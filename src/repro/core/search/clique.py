"""Clique-based candidate generation — the alternative partitioner.

Section 3 mentions that the dependency graph can be partitioned "with a
clique search or clustering algorithm".  This module implements the
clique route: build the graph whose edges are pairs with dependency
``S >= MIN_tight``, enumerate maximal cliques (Bron–Kerbosch via
networkx), and trim cliques larger than the dimension cap to their
best-scoring columns.

A maximal clique satisfies Eq. 3 *exactly* (every pair inside it is an
edge), making this strategy stricter than the dendrogram cut for noisy
dependency structure — at exponential worst-case cost, which is why the
paper's implementation prefers clustering.  ``max_cliques`` bounds the
enumeration defensively.
"""

from __future__ import annotations

import networkx as nx

from repro.core.config import ZiggyConfig
from repro.core.dependency import DependencyMatrix
from repro.core.dissimilarity import ComponentCatalog
from repro.core.views import View

#: Hard bound on enumerated maximal cliques (defensive; dependency graphs
#: of real tables are sparse and never get close).
MAX_CLIQUES = 50_000


def clique_candidates(dependency: DependencyMatrix,
                      config: ZiggyConfig,
                      catalog: ComponentCatalog,
                      max_cliques: int = MAX_CLIQUES) -> list[View]:
    """Candidate views from maximal cliques of the dependency graph.

    Isolated columns (no tight partner) become single-column candidates,
    so the clique strategy covers exactly the same column universe as the
    linkage strategy.
    """
    names = dependency.names
    graph = nx.Graph()
    graph.add_nodes_from(names)
    matrix = dependency.matrix
    m = len(names)
    for i in range(m):
        for j in range(i + 1, m):
            s = matrix[i, j]
            if s == s and s >= config.min_tightness:
                graph.add_edge(names[i], names[j])

    seen: set[tuple[str, ...]] = set()
    candidates: list[View] = []

    def add(columns: tuple[str, ...]) -> None:
        key = tuple(sorted(columns))
        if key and key not in seen:
            seen.add(key)
            candidates.append(View(columns=key))

    for count, clique in enumerate(nx.find_cliques(graph)):
        if count >= max_cliques:
            break
        if len(clique) <= config.max_view_dim:
            add(tuple(clique))
            continue
        # Oversized clique: split into score-ordered chunks of at most
        # max_view_dim columns (any subset of a clique still satisfies
        # Eq. 3).  Emitting *all* chunks keeps every column covered and
        # gives disjointness pruning alternatives.
        ranked = sorted(clique, key=lambda c: (-catalog.column_score(c), c))
        for start in range(0, len(ranked), config.max_view_dim):
            add(tuple(ranked[start:start + config.max_view_dim]))
    return candidates
