"""The view-search facade tying generation, scoring and ranking together."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.config import ZiggyConfig
from repro.core.events import SEARCH_COMPLETE, VIEW_RANKED, EmitFn, StageEvent
from repro.core.preparation import PreparedData
from repro.core.search.candidates import linkage_candidates
from repro.core.search.clique import clique_candidates
from repro.core.search.linkage import Dendrogram, complete_linkage
from repro.core.search.ranking import enforce_disjointness, rank_candidates
from repro.core.views import View, ViewResult
from repro.errors import SearchError


@dataclass
class SearchOutput:
    """What the search stage hands to post-processing.

    Attributes:
        views: ranked, disjoint view results (not yet validated or
            explained).
        n_candidates: candidate count before ranking/pruning (reported in
            the pipeline's diagnostics).
        dendrogram: the linkage dendrogram when that strategy ran (the
            demo surfaces it as tuning support for ``MIN_tight``).
    """

    views: list[ViewResult]
    n_candidates: int
    dendrogram: Dendrogram | None = None
    notes: list[str] = field(default_factory=list)


class ViewSearcher:
    """Runs the configured candidate-generation strategy and the ranker."""

    def __init__(self, config: ZiggyConfig):
        self.config = config

    def search(self, prepared: PreparedData,
               emit: EmitFn | None = None) -> SearchOutput:
        """Produce the ranked disjoint views for one prepared selection.

        ``emit`` receives one ``view-ranked`` :class:`StageEvent` per view
        as the ranker keeps it (best first) — the progressive-results
        stream — and a final ``search-complete`` event carrying the
        :class:`SearchOutput`.
        """
        config = self.config
        if not prepared.active_columns:
            output = SearchOutput(views=[], n_candidates=0,
                                  notes=["no columns to search"])
            if emit is not None:
                emit(StageEvent(SEARCH_COMPLETE, output))
            return output
        dendrogram: Dendrogram | None = None
        if config.search_strategy == "linkage":
            dendrogram = complete_linkage(
                prepared.dependency.distance_matrix(),
                prepared.dependency.names)
            candidates = linkage_candidates(dendrogram, config,
                                            prepared.catalog)
        elif config.search_strategy == "clique":
            candidates = clique_candidates(prepared.dependency, config,
                                           prepared.catalog)
        else:  # pragma: no cover - config validates this upstream
            raise SearchError(f"unknown strategy {config.search_strategy!r}")
        ranked = rank_candidates(candidates, prepared.catalog,
                                 prepared.dependency, config)
        on_keep: Callable[[ViewResult], None] | None = None
        if emit is not None:
            on_keep = lambda vr: emit(StageEvent(VIEW_RANKED, vr))  # noqa: E731
        disjoint = enforce_disjointness(ranked, config.max_views,
                                        on_keep=on_keep)
        output = SearchOutput(
            views=disjoint,
            n_candidates=len(candidates),
            dendrogram=dendrogram,
            notes=[f"{len(candidates)} candidates, {len(ranked)} scored, "
                   f"{len(disjoint)} kept"],
        )
        if emit is not None:
            emit(StageEvent(SEARCH_COMPLETE, output))
        return output

    def rescore(self, views: list[View], prepared: PreparedData) -> list[ViewResult]:
        """Score an explicit list of views (bypassing generation) — used
        by the ablation benchmarks and by front-ends that let users pin
        their own column sets."""
        return rank_candidates(views, prepared.catalog, prepared.dependency,
                               self.config)
