"""Scoring, ranking and the disjointness constraint (Eq. 4 & 5)."""

from __future__ import annotations

from typing import Callable

from repro.core.config import ZiggyConfig
from repro.core.dependency import DependencyMatrix
from repro.core.dissimilarity import ComponentCatalog, score_view
from repro.core.views import View, ViewResult


def rank_candidates(candidates: list[View],
                    catalog: ComponentCatalog,
                    dependency: DependencyMatrix,
                    config: ZiggyConfig) -> list[ViewResult]:
    """Score every candidate and sort by decreasing Zig-Dissimilarity.

    Candidates violating the tightness constraint are dropped here as a
    final guard (both generators respect it by construction, but custom
    candidate lists go through this same path).  Ties break on smaller
    dimension (prefer the simpler view), then lexicographic columns, so
    ranking is fully deterministic.
    """
    results: list[ViewResult] = []
    for view in candidates:
        tightness = dependency.tightness(view.columns)
        if view.dimension > 1 and tightness < config.min_tightness:
            continue
        score, components = score_view(view, catalog, config)
        if not components:
            continue  # nothing measurable on these columns
        results.append(ViewResult(
            view=view,
            score=score,
            tightness=tightness,
            components=components,
        ))
    results.sort(key=lambda r: (-r.score, r.view.dimension, r.view.columns))
    return results


def enforce_disjointness(ranked: list[ViewResult], max_views: int,
                         on_keep: Callable[[ViewResult], None] | None = None
                         ) -> list[ViewResult]:
    """Greedy selection of disjoint views (Eq. 4).

    Walk the ranking top-down, keeping a view only when it shares no
    column with anything already kept — "the results will contain every
    possible subset of a few dominant variables" otherwise.  Stops at
    ``max_views``.

    ``on_keep`` is invoked with each view the moment it is kept — the
    progressive-results hook the service layer streams from.  An exception
    raised by the callback aborts the search (cooperative cancellation).
    """
    used: set[str] = set()
    kept: list[ViewResult] = []
    for result in ranked:
        if len(kept) >= max_views:
            break
        if any(c in used for c in result.columns):
            continue
        kept.append(result)
        used.update(result.columns)
        if on_keep is not None:
            on_keep(result)
    return kept
