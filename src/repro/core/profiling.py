"""A lightweight stage/kernel profiler for the characterization pipeline.

The perf story of this engine is a chain of specific kernels (dependency
matrix, moment scans, sketch answers); when a deployment is slow the
question is always "which kernel, how often, how long".  This module
answers it with near-zero overhead:

* a process-wide :data:`PROFILER` accumulates per-name totals
  (``stage.preparation``, ``kernel.dependency_matrix``, ...) across every
  run in the process — the ``/v2/state`` endpoint surfaces its
  :meth:`~Profiler.snapshot`;
* :meth:`Profiler.collect` additionally scopes collection to one run on
  the current thread, which is how :class:`~repro.core.pipeline.PlanExecutor`
  attaches per-run kernel timings to its result and stage events.

Timings are wall-clock (``perf_counter``).  Recording is a dict update
under a lock — microseconds per call, invisible next to the kernels it
measures.  Everything is safe to call from multiple threads; per-run
collection is thread-local so concurrent jobs never see each other's
kernels.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator


class RunProfile:
    """The per-run view handed out by :meth:`Profiler.collect`."""

    __slots__ = ("_records",)

    def __init__(self, records: dict[str, list]):
        self._records = records

    def snapshot(self) -> dict[str, dict]:
        """``{name: {calls, total_s, max_s}}`` for this run so far."""
        return {name: {"calls": rec[0], "total_s": rec[1], "max_s": rec[2]}
                for name, rec in sorted(self._records.items())}

    def total(self, name: str) -> float:
        """Total seconds recorded under ``name`` in this run (0 if none)."""
        rec = self._records.get(name)
        return rec[1] if rec else 0.0


class Profiler:
    """Named wall-clock accumulators with optional per-run scoping."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._totals: dict[str, list] = {}
        self._local = threading.local()

    # -- recording ----------------------------------------------------------

    def record(self, name: str, seconds: float) -> None:
        """Add one observation to the global and any active run scopes."""
        if not self.enabled:
            return
        with self._lock:
            rec = self._totals.get(name)
            if rec is None:
                rec = self._totals[name] = [0, 0.0, 0.0]
            rec[0] += 1
            rec[1] += seconds
            rec[2] = max(rec[2], seconds)
        # Run scopes belong to this thread only — no lock needed.
        for records in getattr(self._local, "scopes", ()):
            rec = records.get(name)
            if rec is None:
                rec = records[name] = [0, 0.0, 0.0]
            rec[0] += 1
            rec[1] += seconds
            rec[2] = max(rec[2], seconds)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a block under ``name``; exceptions still record."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - t0)

    @contextmanager
    def collect(self) -> Iterator[RunProfile]:
        """Scope recording to one run on the current thread.

        Nested collects each see every record made while they are open.
        """
        records: dict[str, list] = {}
        scopes = getattr(self._local, "scopes", None)
        if scopes is None:
            scopes = self._local.scopes = []
        scopes.append(records)
        try:
            yield RunProfile(records)
        finally:
            # Remove by identity — equal-contented scope dicts (nested
            # collects over the same kernels) must not alias each other.
            for i in range(len(scopes) - 1, -1, -1):
                if scopes[i] is records:
                    del scopes[i]
                    break

    # -- introspection ------------------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """Process-lifetime totals: ``{name: {calls, total_s, max_s}}``."""
        with self._lock:
            return {name: {"calls": rec[0], "total_s": rec[1],
                           "max_s": rec[2]}
                    for name, rec in sorted(self._totals.items())}

    def reset(self) -> None:
        """Drop all global totals (per-run scopes are unaffected)."""
        with self._lock:
            self._totals.clear()


#: The process-wide profiler every pipeline and cache records into.
PROFILER = Profiler()
