"""Typed stage events — the execution core's progress vocabulary.

The plan/execute split (:mod:`repro.core.pipeline`) emits one
:class:`StageEvent` per observable step of a characterization.  Event
kinds, in emission order:

==================  =========================================================
kind                payload
==================  =========================================================
``prepared``        :class:`~repro.core.preparation.PreparedData`
``component-scored``  the :class:`~repro.core.dissimilarity.ComponentCatalog`
``view-ranked``     one :class:`~repro.core.views.ViewResult` per view, as
                    the searcher keeps it (the progressive-results stream)
``search-complete``  :class:`~repro.core.search.searcher.SearchOutput`
``view-ready``      ``(rank, ViewResult)`` per validated, explained view
``result``          the final :class:`CharacterizationResult`
``batch-item``      ``(index, CharacterizationResult)`` after each batch
                    predicate
==================  =========================================================

The legacy progress-callback protocol (``progress(stage, payload)``,
introduced with the service layer) is preserved as a *projection* of this
stream: :func:`legacy_stage` maps each event kind onto the stage string
the old callbacks expect, so existing consumers (the job manager's
partial-view capture, cooperative cancellation) keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

#: Event kinds, in pipeline order.
PREPARED = "prepared"
COMPONENT_SCORED = "component-scored"
VIEW_RANKED = "view-ranked"
SEARCH_COMPLETE = "search-complete"
VIEW_READY = "view-ready"
RESULT = "result"
BATCH_ITEM = "batch-item"

#: All kinds the executor can emit, in order of first emission.
STAGE_KINDS = (PREPARED, COMPONENT_SCORED, VIEW_RANKED, SEARCH_COMPLETE,
               VIEW_READY, RESULT, BATCH_ITEM)


@dataclass(frozen=True)
class StageEvent:
    """One observable step of a characterization.

    Attributes:
        kind: one of :data:`STAGE_KINDS`.
        payload: the stage artifact (see the module table).
    """

    kind: str
    payload: Any = None


#: Signature of a typed event consumer.
EmitFn = Callable[[StageEvent], None]

#: Event kind -> legacy progress-callback stage name.  Kinds absent here
#: pass through under their own name (new consumers only).
_LEGACY_STAGE_FOR = {
    PREPARED: "preparation",
    VIEW_RANKED: "view",
    SEARCH_COMPLETE: "search",
    RESULT: "result",
    BATCH_ITEM: "batch_item",
}


def legacy_stage(kind: str) -> str:
    """The legacy ``progress(stage, payload)`` stage name for a kind."""
    return _LEGACY_STAGE_FOR.get(kind, kind)
