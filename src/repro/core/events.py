"""Typed stage events — the execution core's progress vocabulary.

The plan/execute split (:mod:`repro.core.pipeline`) emits one
:class:`StageEvent` per observable step of a characterization.  Event
kinds, in emission order:

==================  =========================================================
kind                payload
==================  =========================================================
``prepared``        :class:`~repro.core.preparation.PreparedData`
``component-scored``  the :class:`~repro.core.dissimilarity.ComponentCatalog`
``view-ranked``     one :class:`~repro.core.views.ViewResult` per view, as
                    the searcher keeps it (the progressive-results stream)
``search-complete``  :class:`~repro.core.search.searcher.SearchOutput`
``view-ready``      ``(rank, ViewResult)`` per validated, explained view
``result``          the final :class:`CharacterizationResult`
``batch-item``      ``(index, CharacterizationResult)`` after each batch
                    predicate
==================  =========================================================

The legacy progress-callback protocol (``progress(stage, payload)``,
introduced with the service layer) is preserved as a *projection* of this
stream: :func:`legacy_stage` maps each event kind onto the stage string
the old callbacks expect, so existing consumers (the job manager's
partial-view capture, cooperative cancellation) keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

#: Event kinds, in pipeline order.
PREPARED = "prepared"
COMPONENT_SCORED = "component-scored"
VIEW_RANKED = "view-ranked"
SEARCH_COMPLETE = "search-complete"
VIEW_READY = "view-ready"
RESULT = "result"
BATCH_ITEM = "batch-item"

#: All kinds the executor can emit, in order of first emission.
STAGE_KINDS = (PREPARED, COMPONENT_SCORED, VIEW_RANKED, SEARCH_COMPLETE,
               VIEW_READY, RESULT, BATCH_ITEM)


@dataclass(frozen=True)
class StageEvent:
    """One observable step of a characterization.

    Attributes:
        kind: one of :data:`STAGE_KINDS`.
        payload: the stage artifact (see the module table).
    """

    kind: str
    payload: Any = None


#: Signature of a typed event consumer.
EmitFn = Callable[[StageEvent], None]

#: Event kind -> legacy progress-callback stage name.  Kinds absent here
#: pass through under their own name (new consumers only).
_LEGACY_STAGE_FOR = {
    PREPARED: "preparation",
    VIEW_RANKED: "view",
    SEARCH_COMPLETE: "search",
    RESULT: "result",
    BATCH_ITEM: "batch_item",
}


def legacy_stage(kind: str) -> str:
    """The legacy ``progress(stage, payload)`` stage name for a kind."""
    return _LEGACY_STAGE_FOR.get(kind, kind)


# ---------------------------------------------------------------------------
# Compact payloads — the cross-process projection
# ---------------------------------------------------------------------------
#
# Worker processes relay stage events back to the coordinating process.
# The heavy stage artifacts (PreparedData pins column slices and the
# selection's table; SearchOutput pins the dendrogram) must not cross the
# boundary per event, so executors replace them with these summaries.
# Each summary keeps the attributes downstream consumers duck-type on
# (``active_columns``, ``notes``, ``n_candidates``, ...), so the job
# event log and the wire serializer treat both forms identically.
# View and result events pass through unchanged: their payloads are small
# frozen dataclasses and the consumers need them in full.


@dataclass(frozen=True)
class PreparedSummary:
    """Cross-process stand-in for a ``prepared`` event's PreparedData."""

    active_columns: tuple[str, ...]
    n_inside: int
    n_outside: int
    notes: tuple[str, ...] = ()


@dataclass(frozen=True)
class CatalogSummary:
    """Cross-process stand-in for a ``component-scored`` catalog."""

    n_unary: int
    n_pairwise: int


@dataclass(frozen=True)
class SearchSummary:
    """Cross-process stand-in for a ``search-complete`` SearchOutput."""

    n_candidates: int
    n_views: int
    notes: tuple[str, ...] = ()


@dataclass(frozen=True)
class BatchItemSummary:
    """Cross-process stand-in for a ``batch-item`` result.

    The full per-predicate result already crosses once, in the batch
    task's terminal outcome; relaying it a second time per event would
    double the result IPC traffic for nothing.
    """

    n_views: int


def compact_event(event: StageEvent) -> StageEvent:
    """The cheaply-serializable projection of one stage event.

    Already-compact events come back unchanged (same object), so calling
    this unconditionally in a relay loop costs nothing for the common
    per-view events.
    """
    payload = event.payload
    if event.kind == PREPARED and payload is not None \
            and not isinstance(payload, PreparedSummary):
        selection = getattr(payload, "selection", None)
        return StageEvent(PREPARED, PreparedSummary(
            active_columns=tuple(getattr(payload, "active_columns", ()) or ()),
            n_inside=int(getattr(selection, "n_inside", 0) or 0),
            n_outside=int(getattr(selection, "n_outside", 0) or 0),
            notes=tuple(getattr(payload, "notes", ()) or ()),
        ))
    if event.kind == COMPONENT_SCORED and payload is not None \
            and not isinstance(payload, CatalogSummary):
        unary = getattr(payload, "unary", {}) or {}
        pairwise = getattr(payload, "pairwise", {}) or {}
        return StageEvent(COMPONENT_SCORED, CatalogSummary(
            n_unary=sum(len(v) for v in unary.values()),
            n_pairwise=sum(len(v) for v in pairwise.values()),
        ))
    if event.kind == SEARCH_COMPLETE and payload is not None \
            and not isinstance(payload, SearchSummary):
        return StageEvent(SEARCH_COMPLETE, SearchSummary(
            n_candidates=int(getattr(payload, "n_candidates", 0) or 0),
            n_views=len(getattr(payload, "views", ()) or ()),
            notes=tuple(getattr(payload, "notes", ()) or ()),
        ))
    if event.kind == BATCH_ITEM and isinstance(payload, tuple) \
            and len(payload) == 2 \
            and not isinstance(payload[1], BatchItemSummary):
        index, result = payload
        return StageEvent(BATCH_ITEM, (int(index), BatchItemSummary(
            n_views=len(getattr(result, "views", ()) or ()))))
    return event
