"""Handwritten phrase rules, one per Zig-Component.

Each rule maps a :class:`~repro.core.views.ComponentScore` to a noun
phrase that can follow "your selection has ..." — e.g. "particularly
high values".  Rules are registered by component name so custom
components plug into explanations the same way they plug into scoring.
"""

from __future__ import annotations

from typing import Callable

from repro.core.views import ComponentScore

#: Normalized-score threshold above which adjectives intensify
#: ("higher values" -> "particularly high values").
EMPHASIS_THRESHOLD = 2.0

PhraseRule = Callable[[ComponentScore], str]

_RULES: dict[str, PhraseRule] = {}


def register_phrase_rule(component_name: str, rule: PhraseRule,
                         replace: bool = False) -> None:
    """Register the phrase rule for a component.

    Args:
        component_name: the component's registry name.
        rule: callable producing the phrase.
        replace: allow overwriting an existing rule.
    """
    if component_name in _RULES and not replace:
        raise ValueError(
            f"phrase rule for {component_name!r} already registered")
    _RULES[component_name] = rule


def phrase_for(score: ComponentScore) -> str:
    """The phrase for one component score (with a generic fallback)."""
    rule = _RULES.get(score.component)
    if rule is not None:
        return rule(score)
    return (f"an unusual {score.component.replace('_', ' ')} "
            f"(effect {score.raw:+.2f})")


def _emphatic(score: ComponentScore) -> bool:
    return score.normalized >= EMPHASIS_THRESHOLD


def _mean_shift(score: ComponentScore) -> str:
    if score.direction == "higher":
        return ("particularly high values" if _emphatic(score)
                else "higher values")
    return ("particularly low values" if _emphatic(score)
            else "lower values")


def _spread_shift(score: ComponentScore) -> str:
    if score.direction == "lower":
        return ("a remarkably low variance" if _emphatic(score)
                else "a low variance")
    return ("a remarkably high variance" if _emphatic(score)
            else "a high variance")


def _correlation_shift(score: ComponentScore) -> str:
    r_in = score.detail.get("r_inside", float("nan"))
    r_out = score.detail.get("r_outside", float("nan"))
    detail = f" (r={r_in:+.2f} inside vs {r_out:+.2f} outside)"
    if score.direction == "reversed":
        return "a correlation that flips sign" + detail
    if score.direction == "stronger":
        return "a stronger correlation" + detail
    return "a weaker correlation" + detail


def _frequency_shift(score: ComponentScore) -> str:
    over = score.detail.get("over_represented", [])
    under = score.detail.get("under_represented", [])
    bits = []
    if over:
        names = ", ".join(f"'{c}'" for c, _ in over[:3])
        bits.append(f"over-represented: {names}")
    if under:
        names = ", ".join(f"'{c}'" for c, _ in under[:3])
        bits.append(f"under-represented: {names}")
    inner = "; ".join(bits)
    base = ("a markedly different mix of categories" if _emphatic(score)
            else "a different mix of categories")
    return f"{base} ({inner})" if inner else base


def _missing_shift(score: ComponentScore) -> str:
    rate_in = score.detail.get("rate_inside", float("nan"))
    rate_out = score.detail.get("rate_outside", float("nan"))
    detail = f" ({rate_in:.0%} vs {rate_out:.0%})"
    if score.direction == "higher":
        return "more missing values" + detail
    return "fewer missing values" + detail


def _skew_shift(score: ComponentScore) -> str:
    if score.direction == "higher":
        return "a distribution leaning towards low values with a long " \
               "high tail (more right-skewed)"
    return "a distribution leaning towards high values with a long " \
           "low tail (more left-skewed)"


def _dominance(score: ComponentScore) -> str:
    if score.direction == "higher":
        return "values that tend to rank above the rest of the data"
    return "values that tend to rank below the rest of the data"


register_phrase_rule("mean_shift", _mean_shift)
register_phrase_rule("spread_shift", _spread_shift)
register_phrase_rule("correlation_shift", _correlation_shift)
register_phrase_rule("frequency_shift", _frequency_shift)
register_phrase_rule("missing_shift", _missing_shift)
register_phrase_rule("dominance", _dominance)
register_phrase_rule("skew_shift", _skew_shift)
