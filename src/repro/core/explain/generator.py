"""Sentence assembly for view explanations."""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import ZiggyConfig
from repro.core.explain.vocabulary import phrase_for
from repro.core.views import ComponentScore, ViewResult


def _join_names(names: tuple[str, ...]) -> str:
    if len(names) == 1:
        return names[0]
    return ", ".join(names[:-1]) + " and " + names[-1]


def _join_phrases(phrases: list[str]) -> str:
    if not phrases:
        return "no measurable difference"
    if len(phrases) == 1:
        return phrases[0]
    return ", ".join(phrases[:-1]) + " and " + phrases[-1]


def _qualified_phrase(score: ComponentScore, view_columns: tuple[str, ...]) -> str:
    """Phrase with a column qualifier when it covers only part of the view.

    In a two-column view a unary component speaks about one column only;
    "(on Population)" disambiguates, matching how the demo UI annotates
    its right-hand panel.
    """
    phrase = phrase_for(score)
    if len(view_columns) > 1 and len(score.columns) < len(view_columns):
        phrase += f" (on {_join_names(score.columns)})"
    return phrase


class ExplanationGenerator:
    """Generates the textual explanation for each view.

    The selection rule follows Section 3: keep the components "associated
    with the highest levels of confidence" — ranked by ``1 - p``, with
    weighted score as the tiebreak — and verbalize the top
    ``config.explanation_components`` of them.
    """

    def __init__(self, config: ZiggyConfig):
        self.config = config

    def explain(self, result: ViewResult) -> str:
        """Build the explanation sentence(s) for one view."""
        chosen = self._select_components(result)
        columns_text = _join_names(result.columns)
        noun = "column" if len(result.columns) == 1 else "columns"
        phrases = [_qualified_phrase(c, result.columns) for c in chosen]
        sentence = (f"On the {noun} {columns_text}, your selection has "
                    f"{_join_phrases(phrases)}.")
        if result.p_value <= self.config.alpha:
            confidence = (1.0 - result.p_value) * 100.0
            qualifier = ">" if confidence > 99.9 else ""
            sentence += (f" (confidence {qualifier}"
                         f"{min(confidence, 99.9):.1f}%"
                         f", {self.config.aggregation} aggregation)")
        else:
            sentence += " (warning: not statistically significant)"
        return sentence

    def annotate(self, results: list[ViewResult]) -> list[ViewResult]:
        """Attach explanations to a ranked list of views."""
        return [replace(r, explanation=self.explain(r)) for r in results]

    def _select_components(self, result: ViewResult) -> list[ComponentScore]:
        ranked = sorted(
            result.components,
            key=lambda c: (-c.confidence, -c.weighted, c.component, c.columns))
        chosen = ranked[: self.config.explanation_components]
        # Keep stable narrative order: means before spreads before the rest.
        narrative_order = {"mean_shift": 0, "spread_shift": 1, "dominance": 2,
                           "correlation_shift": 3, "frequency_shift": 4,
                           "missing_shift": 5}
        chosen.sort(key=lambda c: (narrative_order.get(c.component, 9),
                                   c.columns))
        return chosen


def explain_view(result: ViewResult, config: ZiggyConfig | None = None) -> str:
    """One-shot convenience wrapper around :class:`ExplanationGenerator`."""
    return ExplanationGenerator(config or ZiggyConfig()).explain(result)
