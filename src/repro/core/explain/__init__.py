"""Explanation generation — Ziggy's distinguishing feature.

Section 2.2: the Zig-Dissimilarity "lets Ziggy explain its choices ...
it comments the view as follows: 'On the columns Population and Density,
your selection has particularly high values and a low variance'".
Section 3: "Ziggy choses the Zig-Components associated with the highest
levels of confidence, and it describes them with text.  We implemented
the text generation functionalities with handwritten rules and regular
expressions."

Faithful to that: a vocabulary of handwritten per-component phrase rules
(:mod:`repro.core.explain.vocabulary`) plus a sentence assembler
(:mod:`repro.core.explain.generator`).
"""

from repro.core.explain.vocabulary import phrase_for, register_phrase_rule
from repro.core.explain.generator import ExplanationGenerator, explain_view

__all__ = [
    "phrase_for",
    "register_phrase_rule",
    "ExplanationGenerator",
    "explain_view",
]
