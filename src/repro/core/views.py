"""Result types: views, component scores, characterization results.

These are the objects the public API returns.  They are plain frozen
dataclasses so front-ends (the demo app, the JSON API, tests) can consume
them without touching pipeline internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.stats.tests_ import TestResult


@dataclass(frozen=True)
class View:
    """A candidate characteristic view: a small set of columns.

    Column order is normalized at construction so views compare equal
    regardless of the order the search produced them in.
    """

    columns: tuple[str, ...]

    def __post_init__(self):
        if not self.columns:
            raise ValueError("a view must contain at least one column")
        object.__setattr__(self, "columns", tuple(sorted(self.columns)))

    @property
    def dimension(self) -> int:
        """Number of columns in the view."""
        return len(self.columns)

    def overlaps(self, other: "View") -> bool:
        """Whether the two views share any column (Eq. 4 forbids it)."""
        return bool(set(self.columns) & set(other.columns))

    def __str__(self) -> str:
        return "{" + ", ".join(self.columns) + "}"


@dataclass(frozen=True)
class ComponentScore:
    """One evaluated Zig-Component on a column (or column pair).

    Attributes:
        component: registered component name (e.g. ``"mean_shift"``).
        columns: the column(s) the component was computed on.
        raw: the signed raw effect size (inside minus outside convention).
        normalized: the magnitude after normalization, >= 0, comparable
            across component types.
        weight: the user weight applied in the final sum.
        test: the significance test outcome, or None when the component
            has no test (degenerate data).
        direction: "higher" / "lower" / "different" — drives explanations.
        detail: component-specific extras (group means, proportions, the
            two correlation coefficients, ...), for rendering.
    """

    component: str
    columns: tuple[str, ...]
    raw: float
    normalized: float
    weight: float
    test: TestResult | None
    direction: str
    detail: dict = field(default_factory=dict)

    @property
    def weighted(self) -> float:
        """Weight times normalized magnitude — the score contribution."""
        return self.weight * self.normalized

    @property
    def p_value(self) -> float:
        """The component's p-value (1.0 when no test could run)."""
        return self.test.p_value if self.test is not None else 1.0

    @property
    def confidence(self) -> float:
        """``1 - p`` — what the explanation generator ranks by."""
        return 1.0 - self.p_value


@dataclass(frozen=True)
class ViewResult:
    """A scored, validated, explained characteristic view.

    Attributes:
        view: the column set.
        score: the Zig-Dissimilarity (Eq. 1) under the user's weights.
        tightness: min pairwise dependency among the view's columns
            (Eq. 2); 1.0 by convention for single-column views.
        components: all component scores contributing to the view.
        p_value: aggregated significance of the view (post-processing).
        significant: whether the view passed the spurious-findings filter.
        explanation: generated natural-language description.
    """

    view: View
    score: float
    tightness: float
    components: tuple[ComponentScore, ...]
    p_value: float = 1.0
    significant: bool = False
    explanation: str = ""

    @property
    def columns(self) -> tuple[str, ...]:
        """Shortcut for ``view.columns``."""
        return self.view.columns

    def top_components(self, k: int = 3) -> tuple[ComponentScore, ...]:
        """The ``k`` components with the highest confidence, then weight.

        This is the selection rule of Section 3: "Ziggy choses the
        Zig-Components associated with the highest levels of confidence".
        """
        ranked = sorted(self.components,
                        key=lambda c: (-c.confidence, -c.weighted, c.component))
        return tuple(ranked[:k])

    def summary_line(self) -> str:
        """Compact one-line rendering for list panels."""
        cols = ", ".join(self.columns)
        flag = "" if self.significant else "  (not significant)"
        return f"[{self.score:7.3f}] {cols}{flag}"


@dataclass(frozen=True)
class CharacterizationResult:
    """Everything one call to :meth:`Ziggy.characterize` produces.

    Attributes:
        views: ranked view results (best first).
        n_inside: selected-row count.
        n_outside: complement-row count.
        n_columns_considered: columns that entered the search.
        timings: seconds per pipeline stage
            (``preparation`` / ``view_search`` / ``post_processing``).
        predicate: canonical text of the characterized predicate.
        notes: warnings accumulated along the way (skipped columns,
            degenerate components, ...).
    """

    views: tuple[ViewResult, ...]
    n_inside: int
    n_outside: int
    n_columns_considered: int
    timings: dict[str, float]
    predicate: str
    notes: tuple[str, ...] = ()

    @property
    def total_time(self) -> float:
        """Wall-clock seconds across all stages."""
        return sum(self.timings.values())

    def best(self) -> ViewResult | None:
        """The top-ranked view, or None when nothing was found."""
        return self.views[0] if self.views else None

    def view_for(self, column: str) -> ViewResult | None:
        """The view containing ``column``, if any (views are disjoint)."""
        for vr in self.views:
            if column in vr.columns:
                return vr
        return None

    def describe(self) -> str:
        """Multi-line text summary (what the demo's left panel shows)."""
        lines = [
            f"query: {self.predicate}",
            f"selection: {self.n_inside} rows inside, {self.n_outside} outside",
            f"{len(self.views)} characteristic view(s) "
            f"over {self.n_columns_considered} columns "
            f"in {self.total_time * 1000:.1f} ms",
        ]
        for i, vr in enumerate(self.views, start=1):
            lines.append(f"  {i}. {vr.summary_line()}")
        return "\n".join(lines)
