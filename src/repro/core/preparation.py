"""Preparation stage: slices, dependency matrix, Zig-Component evaluation.

Figure 4's first stage: "Ziggy executes the user's query, loads the
results, and computes the Zig-Components associated to each column and
each couple of columns.  ...  The output of these operations is a table,
which describes the Zig-Components associated to each variable and each
pair of variables."  That output table is :class:`ComponentCatalog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.components.base import (
    ColumnSlice,
    ComponentRegistry,
    DEFAULT_COMPONENTS,
    PairSlice,
    ZigComponent,
    default_registry,
)
from repro.core.config import ZiggyConfig
from repro.core.dependency import DependencyMatrix
from repro.core.dissimilarity import (
    ComponentCatalog,
    build_normalizer,
    make_component_score,
)
from repro.core.stats_cache import StatsCache, TieredStatsCache
from repro.engine.column import CategoricalColumn
from repro.engine.database import Selection
from repro.errors import EmptySelectionError
from repro.stats.histogram import FrequencyProfile


@dataclass
class PreparedData:
    """Everything the view-search stage needs.

    Attributes:
        selection: the characterized selection.
        active_columns: columns that entered the analysis.
        column_slices: per-column inside/outside data and summaries.
        pair_slices: per-pair slices for tight numeric pairs.
        dependency: the whole-table dependency matrix over
            ``active_columns``.
        catalog: normalized, weighted component scores.
        notes: diagnostics (skipped columns, fallbacks taken).
    """

    selection: Selection
    active_columns: tuple[str, ...]
    column_slices: dict[str, ColumnSlice]
    pair_slices: dict[tuple[str, str], PairSlice]
    dependency: DependencyMatrix
    catalog: ComponentCatalog
    notes: list[str] = field(default_factory=list)


def active_components(registry: ComponentRegistry,
                      config: ZiggyConfig) -> list[tuple[ZigComponent, float]]:
    """The components this run evaluates, with their weights.

    A component runs when it is in the default set (unless weighted to
    zero) or when the user gave it a positive weight explicitly — this is
    how optional components like ``dominance`` are switched on.
    """
    chosen: list[tuple[ZigComponent, float]] = []
    for name in registry.names():
        weight = config.weight_for(name)
        in_default = name in DEFAULT_COMPONENTS
        explicitly_on = name in config.weights and config.weights[name] > 0
        if (in_default and weight > 0) or explicitly_on:
            chosen.append((registry.get(name), weight))
    return chosen


class PreparationEngine:
    """Runs the preparation stage for one selection.

    Args:
        registry: component registry (defaults to the paper's set).
        cache: a shared :class:`StatsCache` for cross-query computation
            sharing; when None an ephemeral cache is created per call
            (identical code path, no sharing).
    """

    def __init__(self, registry: ComponentRegistry | None = None,
                 cache: StatsCache | None = None):
        self.registry = registry if registry is not None else default_registry()
        self.cache = cache
        self._sample_memo: dict[tuple, tuple] = {}

    # -- public entry ------------------------------------------------------------

    def prepare(self, selection: Selection, config: ZiggyConfig,
                cache: StatsCache | None = None,
                registry: ComponentRegistry | None = None) -> PreparedData:
        """Build slices, dependency matrix and the component catalog.

        ``cache`` and ``registry`` override the engine's own for this
        call (the plan/execute pipeline passes the plan's through here);
        with no cache anywhere an ephemeral one keeps the code path
        identical without any sharing.
        """
        if cache is None:
            cache = self.cache if self.cache is not None else StatsCache()
        if registry is None:
            registry = self.registry
        notes: list[str] = []
        self._check_group_sizes(selection, config)
        if (config.sample_rows is not None
                and selection.table.n_rows > config.sample_rows):
            selection = self._sampled_selection(selection, config)
            notes.append(f"preparation ran on a stratified sample of "
                         f"{selection.table.n_rows} rows "
                         f"({selection.n_inside} inside)")
        columns = self._active_columns(selection, config, notes)
        slices = self._build_column_slices(selection, columns, cache, config,
                                           notes)
        dependency = cache.dependency_matrix(
            selection.table, columns, config.dependency_method, config.mi_bins)
        pair_slices = self._build_pair_slices(
            selection, columns, slices, dependency, config, cache, notes)
        catalog = self._evaluate_components(slices, pair_slices, config,
                                            notes, registry)
        return PreparedData(
            selection=selection,
            active_columns=columns,
            column_slices=slices,
            pair_slices=pair_slices,
            dependency=dependency,
            catalog=catalog,
            notes=notes,
        )

    # -- steps ----------------------------------------------------------------------

    def _sampled_selection(self, selection: Selection,
                           config: ZiggyConfig) -> Selection:
        """Stratified row sample: both groups kept proportionally, each
        at least ``min_group_size`` rows.  The sampled base table is
        memoized per (table, budget, seed) so cross-query sharing keeps
        working on the sampled rows."""
        table = selection.table
        n = table.n_rows
        budget = int(config.sample_rows)  # validated non-None by caller
        frac = budget / n
        inside_idx = np.flatnonzero(selection.mask)
        outside_idx = np.flatnonzero(~selection.mask)
        rng = np.random.default_rng(config.random_seed)
        k_in = min(inside_idx.size,
                   max(int(round(inside_idx.size * frac)),
                       config.min_group_size))
        k_out = min(outside_idx.size,
                    max(budget - k_in, config.min_group_size))
        take_in = rng.choice(inside_idx, size=k_in, replace=False)
        take_out = rng.choice(outside_idx, size=k_out, replace=False)
        rows = np.sort(np.concatenate([take_in, take_out]))
        # Keyed by content fingerprint, not id(): object identity can be
        # recycled after a table is collected, and the memo must never
        # serve another table's sample.
        key = (table.fingerprint(), budget, config.random_seed,
               selection.fingerprint)
        cached = self._sample_memo.get(key)
        if cached is None:
            sampled_table = table.take(rows, name=f"{table.name}/sample")
            cached = (sampled_table, rows)
            self._sample_memo[key] = cached
        sampled_table, rows = cached
        sampled_mask = selection.mask[rows]
        return Selection(
            table=sampled_table,
            mask=sampled_mask,
            predicate=selection.predicate,
            fingerprint=f"{selection.fingerprint}/s{budget}",
        )

    @staticmethod
    def _check_group_sizes(selection: Selection, config: ZiggyConfig) -> None:
        n_in, n_out = selection.n_inside, selection.n_outside
        if n_in < config.min_group_size or n_out < config.min_group_size:
            raise EmptySelectionError(n_in, selection.table.n_rows)

    @staticmethod
    def _active_columns(selection: Selection, config: ZiggyConfig,
                        notes: list[str]) -> tuple[str, ...]:
        table = selection.table
        excluded = set(config.excluded_columns)
        if config.exclude_predicate_columns and selection.predicate is not None:
            predicate_cols = selection.predicate.referenced_columns()
            if predicate_cols:
                notes.append("excluded predicate columns: "
                             + ", ".join(sorted(predicate_cols)))
            excluded |= predicate_cols
        out: list[str] = []
        for col in table.columns:
            if col.name in excluded:
                continue
            if isinstance(col, CategoricalColumn) and not config.include_categorical:
                continue
            out.append(col.name)
        return tuple(out)

    @staticmethod
    def _sketch_cache(cache: StatsCache,
                      config: ZiggyConfig) -> TieredStatsCache | None:
        """The cache's sketch tier, when present and enabled."""
        if config.sketch_tier == "off":
            return None
        return cache if isinstance(cache, TieredStatsCache) else None

    def _build_column_slices(self, selection: Selection,
                             columns: tuple[str, ...],
                             cache: StatsCache,
                             config: ZiggyConfig,
                             notes: list[str]) -> dict[str, ColumnSlice]:
        table = selection.table
        mask = selection.mask
        tiered = self._sketch_cache(cache, config)
        sketched = 0
        numeric_total = 0
        slices: dict[str, ColumnSlice] = {}
        for name in columns:
            col = table.column(name)
            if isinstance(col, CategoricalColumn):
                slices[name] = ColumnSlice(
                    name=name,
                    is_categorical=True,
                    inside=col.codes[mask],
                    outside=col.codes[~mask],
                    inside_profile=_profile_from_codes(col, mask),
                    outside_profile=_profile_from_codes(col, ~mask),
                )
                continue
            numeric_total += 1
            answer = (tiered.sketch_column_answer(selection, name,
                                                  config.sketch_margin)
                      if tiered is not None else None)
            if answer is not None:
                inside_stats, outside_stats, sample_in, sample_out = answer
                # Raw arrays are the *sampled* rows: raw-value tests
                # (Levene, Mann-Whitney) run on the sample — honest, and
                # conservative at the sample size.
                slices[name] = ColumnSlice(
                    name=name,
                    is_categorical=False,
                    inside=sample_in,
                    outside=sample_out,
                    inside_stats=inside_stats,
                    outside_stats=outside_stats,
                )
                sketched += 1
                continue
            values = col.numeric_values()
            slices[name] = ColumnSlice(
                name=name,
                is_categorical=False,
                inside=values[mask],
                outside=values[~mask],
                inside_stats=cache.inside_column_stats(selection, name),
                outside_stats=cache.outside_column_stats(selection, name),
            )
        if sketched:
            notes.append(
                f"sketch tier answered {sketched}/{numeric_total} numeric "
                f"columns (margin {config.sketch_margin})")
        return slices

    def _build_pair_slices(self, selection: Selection,
                           columns: tuple[str, ...],
                           slices: dict[str, ColumnSlice],
                           dependency: DependencyMatrix,
                           config: ZiggyConfig,
                           cache: StatsCache,
                           notes: list[str]) -> dict[tuple[str, str], PairSlice]:
        if not config.correlation_components:
            notes.append("pairwise components disabled by configuration")
            return {}
        numeric = tuple(c for c in columns if not slices[c].is_categorical)
        if len(numeric) < 2:
            return {}
        tiered = self._sketch_cache(cache, config)
        answer = (tiered.sketch_group_correlations(selection, numeric,
                                                   config.sketch_margin)
                  if tiered is not None else None)
        if answer is not None:
            corr_in, n_in, corr_out, n_out = answer
            notes.append("sketch tier answered pairwise correlations")
        else:
            corr_in, n_in, corr_out, n_out = cache.group_correlations(
                selection, numeric)
        # Vectorized threshold scan over the dependency submatrix —
        # wide tables make a per-pair Python loop the bottleneck.
        dep_index = [dependency.index_of(c) for c in numeric]
        sub = dependency.matrix[np.ix_(dep_index, dep_index)]
        tight = np.triu(np.where(np.isnan(sub), -1.0, sub)
                        >= config.min_tightness, k=1)
        pairs: dict[tuple[str, str], PairSlice] = {}
        for ia, ib in np.argwhere(tight):
            a, b = numeric[ia], numeric[ib]
            key = (a, b) if a <= b else (b, a)
            pairs[key] = PairSlice(
                x=slices[a],
                y=slices[b],
                r_inside=float(corr_in[ia, ib]),
                r_outside=float(corr_out[ia, ib]),
                n_inside=int(n_in[ia, ib]),
                n_outside=int(n_out[ia, ib]),
            )
        return pairs

    def _evaluate_components(self, slices: dict[str, ColumnSlice],
                             pair_slices: dict[tuple[str, str], PairSlice],
                             config: ZiggyConfig,
                             notes: list[str],
                             registry: ComponentRegistry | None = None
                             ) -> ComponentCatalog:
        chosen = active_components(registry if registry is not None
                                   else self.registry, config)
        unary = [(c, w) for c, w in chosen if c.arity == 1]
        pairwise = [(c, w) for c, w in chosen if c.arity == 2]

        # Pass 1: raw outcomes.
        unary_outcomes: dict[str, list[tuple[str, object]]] = {}
        for component, _ in unary:
            rows: list[tuple[str, object]] = []
            for name, data in slices.items():
                if not component.applicable(data):
                    continue
                outcome = component.compute(data)
                if outcome is not None:
                    rows.append((name, outcome))
            unary_outcomes[component.name] = rows
        pair_outcomes: dict[str, list[tuple[tuple[str, str], object]]] = {}
        for component, _ in pairwise:
            rows2: list[tuple[tuple[str, str], object]] = []
            for key, data in pair_slices.items():
                if not component.applicable(data):
                    continue
                outcome = component.compute(data)
                if outcome is not None:
                    rows2.append((key, outcome))
            pair_outcomes[component.name] = rows2

        # Pass 2: fit normalizers on each component's population and emit
        # the final scores (the paper's "normalize, then weighted sum").
        weights = {c.name: w for c, w in chosen}
        catalog = ComponentCatalog()
        for comp_name, rows in unary_outcomes.items():
            normalizer = build_normalizer([o.raw for _, o in rows],
                                          config.normalization)
            for col, outcome in rows:
                score = make_component_score(comp_name, (col,), outcome,
                                             normalizer, weights[comp_name])
                catalog.unary.setdefault(col, []).append(score)
        for comp_name, rows2 in pair_outcomes.items():
            normalizer = build_normalizer([o.raw for _, o in rows2],
                                          config.normalization)
            for key, outcome in rows2:
                score = make_component_score(comp_name, key, outcome,
                                             normalizer, weights[comp_name])
                catalog.pairwise.setdefault(key, []).append(score)
        evaluated = sum(len(r) for r in unary_outcomes.values()) + sum(
            len(r) for r in pair_outcomes.values())
        catalog.notes.append(f"evaluated {evaluated} component instances")
        notes.extend(catalog.notes)
        return catalog


def _profile_from_codes(col: CategoricalColumn, mask: np.ndarray) -> FrequencyProfile:
    """Frequency profile of a categorical column restricted to ``mask``."""
    codes = col.codes[mask]
    missing = int((codes < 0).sum())
    valid = codes[codes >= 0]
    counts = np.bincount(valid, minlength=len(col.labels)).astype(np.int64)
    return FrequencyProfile(categories=tuple(col.labels), counts=counts,
                            n_missing=missing)
