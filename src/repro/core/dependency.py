"""The dependency measure ``S`` and the pairwise dependency matrix.

Equation 2 defines view tightness as the minimum pairwise statistical
dependency among a view's columns, for a user-chosen measure ``S`` "such
as the correlation or the mutual information".  This module computes the
full ``M x M`` dependency matrix over the *whole* table (dependencies are
a property of the data, not of the query, so the statistics cache shares
the matrix across queries).

Supported measures, all mapped to [0, 1]:

* numeric-numeric: ``|Pearson|``, ``|Spearman|`` or normalized mutual
  information;
* categorical-categorical: Cramér's V;
* numeric-categorical: the correlation ratio η (square root of the
  between-group variance fraction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.engine.column import CategoricalColumn
from repro.engine.table import Table
from repro.errors import InsufficientDataError, SearchError
from repro.stats.correlation import masked_correlation_matrix, rankdata_matrix
from repro.stats.entropy import (
    binned_mutual_information_matrix,
    normalized_mutual_information,
)


@dataclass(frozen=True)
class DependencyMatrix:
    """Symmetric pairwise dependency in [0, 1] over named columns."""

    names: tuple[str, ...]
    matrix: np.ndarray
    method: str

    def __post_init__(self):
        m = self.matrix
        if m.shape != (len(self.names), len(self.names)):
            raise SearchError("dependency matrix shape does not match names")

    def index_of(self, name: str) -> int:
        """Position of a column in the matrix."""
        try:
            return self.names.index(name)
        except ValueError:
            raise SearchError(f"column {name!r} not in dependency matrix") from None

    def dependency(self, a: str, b: str) -> float:
        """S(a, b); 1.0 when ``a == b``."""
        if a == b:
            return 1.0
        value = self.matrix[self.index_of(a), self.index_of(b)]
        return float(value) if value == value else 0.0

    def tightness(self, columns: tuple[str, ...]) -> float:
        """Eq. 2: minimum pairwise dependency inside the column set.

        Single-column views have tightness 1.0 by convention (there is
        nothing to be incoherent with).
        """
        if len(columns) < 2:
            return 1.0
        idx = [self.index_of(c) for c in columns]
        sub = self.matrix[np.ix_(idx, idx)]
        off = sub[~np.eye(len(idx), dtype=bool)]
        cleaned = np.where(np.isnan(off), 0.0, off)
        return float(cleaned.min())

    def distance_matrix(self) -> np.ndarray:
        """``1 - S`` with NaNs treated as fully independent (distance 1)."""
        d = 1.0 - np.where(np.isnan(self.matrix), 0.0, self.matrix)
        np.fill_diagonal(d, 0.0)
        return np.clip(d, 0.0, 1.0)


def correlation_ratio(codes: np.ndarray, values: np.ndarray) -> float:
    """η: dependency of a numeric variable on a categorical one, in [0,1].

    ``sqrt(SS_between / SS_total)`` over non-missing pairs; 0 when the
    numeric variance is zero.
    """
    codes = np.asarray(codes)
    values = np.asarray(values, dtype=np.float64)
    keep = (codes >= 0) & ~np.isnan(values)
    codes, values = codes[keep], values[keep]
    if values.size < 2:
        raise InsufficientDataError("correlation_ratio", needed=2,
                                    got=int(values.size))
    grand = values.mean()
    ss_total = float(((values - grand) ** 2).sum())
    if ss_total <= 0.0:
        return 0.0
    # Group sizes and sums in two bincounts — no per-group Python loop.
    counts = np.bincount(codes)
    sums = np.bincount(codes, weights=values)
    present = counts > 0
    means = sums[present] / counts[present]
    ss_between = float((counts[present] * (means - grand) ** 2).sum())
    return float(math.sqrt(min(1.0, max(0.0, ss_between / ss_total))))


def cramers_v(codes_a: np.ndarray, codes_b: np.ndarray,
              k_a: int, k_b: int) -> float:
    """Cramér's V between two dictionary-encoded categorical columns."""
    keep = (codes_a >= 0) & (codes_b >= 0)
    a, b = codes_a[keep], codes_b[keep]
    n = a.size
    if n < 2 or k_a < 1 or k_b < 1:
        return 0.0
    table = np.bincount(a * k_b + b, minlength=k_a * k_b).reshape(k_a, k_b)
    table = table[table.sum(axis=1) > 0][:, table.sum(axis=0) > 0]
    if table.shape[0] < 2 or table.shape[1] < 2:
        return 0.0
    expected = np.outer(table.sum(axis=1), table.sum(axis=0)) / n
    with np.errstate(divide="ignore", invalid="ignore"):
        chi2 = np.nansum((table - expected) ** 2 / expected)
    denom = n * (min(table.shape) - 1)
    if denom <= 0:
        return 0.0
    return float(math.sqrt(min(1.0, chi2 / denom)))


def compute_dependency_matrix(table: Table, columns: tuple[str, ...],
                              method: str = "pearson",
                              mi_bins: int = 8) -> DependencyMatrix:
    """Build the dependency matrix for the given columns of a table.

    Numeric-numeric dependencies use ``method``; mixed and categorical
    pairs always use η and Cramér's V respectively (correlation is not
    defined for them, whatever the configured method).
    """
    numeric = [c for c in columns if not isinstance(table.column(c), CategoricalColumn)]
    categorical = [c for c in columns if isinstance(table.column(c), CategoricalColumn)]
    m = len(columns)
    pos = {name: i for i, name in enumerate(columns)}
    out = np.zeros((m, m), dtype=np.float64)
    np.fill_diagonal(out, 1.0)

    # Numeric block.
    if len(numeric) >= 2:
        data = table.numeric_matrix(numeric)
        if method in ("pearson", "spearman"):
            if method == "spearman":
                # Rank per column (NaNs stay NaN), then pairwise-complete
                # Pearson on the ranks — the standard pairwise-deletion
                # Spearman estimator, fully vectorized.
                data = rankdata_matrix(data)
            corr, _ = masked_correlation_matrix(data)
            block = np.abs(corr)
        elif method == "nmi":
            # Per-column bin codes are computed once; each pair is then a
            # single bincount instead of two sorts — the matrix form of
            # the estimator replaces the O(k^2) Python pair loop.
            block = binned_mutual_information_matrix(data, bins=mi_bins)
        else:
            raise SearchError(f"unknown dependency method {method!r}")
        idx = [pos[c] for c in numeric]
        out[np.ix_(idx, idx)] = np.where(np.isnan(block), np.nan, block)
        np.fill_diagonal(out, 1.0)

    # Categorical block.
    for i, ca in enumerate(categorical):
        col_a = table.column(ca)
        for cb in categorical[i + 1:]:
            col_b = table.column(cb)
            v = cramers_v(col_a.codes, col_b.codes,
                          len(col_a.labels), len(col_b.labels))
            out[pos[ca], pos[cb]] = out[pos[cb], pos[ca]] = v

    # Mixed block.
    for ca in categorical:
        col_a = table.column(ca)
        for cn in numeric:
            values = table.column(cn).numeric_values()
            try:
                eta = correlation_ratio(col_a.codes, values)
            except InsufficientDataError:
                eta = float("nan")
            out[pos[ca], pos[cn]] = out[pos[cn], pos[ca]] = eta

    return DependencyMatrix(names=tuple(columns), matrix=out, method=method)


def categorical_nmi(codes_a: np.ndarray, codes_b: np.ndarray,
                    k_a: int, k_b: int) -> float:
    """Normalized MI between two categorical columns (alternative to V)."""
    keep = (codes_a >= 0) & (codes_b >= 0)
    a, b = codes_a[keep], codes_b[keep]
    if a.size == 0 or k_a < 1 or k_b < 1:
        return 0.0
    table = np.bincount(a * k_b + b, minlength=k_a * k_b).reshape(k_a, k_b)
    return normalized_mutual_information(table)
