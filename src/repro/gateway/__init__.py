"""The gateway subsystem: production-traffic front-ends over the service.

Two interchangeable HTTP front-ends share one transport-neutral route
layer (:mod:`repro.gateway.routes`):

* the **threaded** baseline (:mod:`repro.service.server`) — one OS
  thread per connection, simple and debuggable;
* the **async** gateway (:mod:`repro.gateway.server`) — one event loop
  multiplexing thousands of concurrent SSE subscribers, with compute
  bridged onto the existing executor backends.

Both enforce the same :class:`GatewayPolicy`: per-client/per-table
admission control (token buckets), a bounded job-submission queue
answering ``429`` + ``Retry-After``, and slow-consumer eviction on the
job event streams.
"""

from repro.gateway.admission import (
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)
from repro.gateway.routes import (
    EventStreamReply,
    GatewayMetrics,
    GatewayPolicy,
    GatewayRoutes,
    JsonReply,
    status_for,
)
from repro.gateway.server import AsyncGateway, make_async_server


def make_frontend(service, frontend: str = "threaded",
                  host: str = "127.0.0.1", port: int = 0,
                  verbose: bool = False,
                  policy: "GatewayPolicy | None" = None):
    """Build the requested front-end over ``service`` (not started).

    Returns an object with the shared server surface —
    ``serve_forever()`` / ``shutdown()`` / ``server_close()`` /
    ``close()`` / ``server_address`` — so callers (CLI, tests, bench)
    can treat the two interchangeably.
    """
    if frontend == "async":
        return make_async_server(service, host=host, port=port,
                                 verbose=verbose, policy=policy)
    if frontend == "threaded":
        from repro.service.server import make_server
        return make_server(service, host=host, port=port,
                           verbose=verbose, policy=policy)
    raise ValueError(f"unknown frontend {frontend!r} "
                     "(expected 'threaded' or 'async')")


__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AsyncGateway",
    "EventStreamReply",
    "GatewayMetrics",
    "GatewayPolicy",
    "GatewayRoutes",
    "JsonReply",
    "TokenBucket",
    "make_async_server",
    "make_frontend",
    "status_for",
]
