"""Transport-neutral HTTP route logic shared by both front-ends.

The threaded server (:mod:`repro.service.server`) and the asyncio
gateway (:mod:`repro.gateway.server`) speak the same protocol over the
same paths; this module is the single definition of what each route
*does* so the two cannot drift.  A front-end hands a parsed request
(method, path, headers, decoded body) to :class:`GatewayRoutes` and
gets back either a :class:`JsonReply` (payload dict + HTTP status +
extra headers, ready to serialize) or an :class:`EventStreamReply`
(the marker that this request becomes a Server-Sent-Events stream of
the named job, starting after a resume cursor).

The production-traffic controls live here too, so both front-ends
enforce them identically:

* **admission control** — compute-bearing requests (characterize,
  batch, job submission) pass per-client and per-table token buckets
  (:class:`~repro.gateway.admission.AdmissionController`); a rejected
  request is answered ``429`` with a ``Retry-After`` header and a
  structured ``throttled`` error carrying the exact wait in
  ``detail.retry_after``.
* **backpressure** — job submission is bounded by
  ``GatewayPolicy.max_pending_jobs`` open (non-terminal) jobs; beyond
  it, submissions get the same ``429`` + ``Retry-After`` treatment
  instead of queueing without limit.
* **observability** — :class:`GatewayMetrics` counts open/peak SSE
  subscribers, evicted slow consumers and every rejection, and the
  counters are surfaced on ``/healthz`` and ``GET /v2/state``.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ReproError, ThrottledError
from repro.gateway.admission import AdmissionController
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ApiError,
    ErrorCode,
    json_safe,
)

#: Error code -> HTTP status for error payloads.
STATUS_FOR_CODE = {
    ErrorCode.BAD_REQUEST: 400,
    ErrorCode.UNKNOWN_ACTION: 400,
    ErrorCode.UNKNOWN_TABLE: 404,
    ErrorCode.UNKNOWN_COLUMN: 400,
    ErrorCode.SYNTAX_ERROR: 400,
    ErrorCode.EMPTY_SELECTION: 400,
    ErrorCode.INVALID_CONFIG: 400,
    ErrorCode.NO_ACTIVE_QUERY: 409,
    ErrorCode.JOB_NOT_FOUND: 404,
    ErrorCode.CANCELLED: 200,
    ErrorCode.INTERRUPTED: 200,
    ErrorCode.THROTTLED: 429,
    ErrorCode.ERROR: 400,
    ErrorCode.INTERNAL: 500,
}

#: POST /v2/<suffix> -> implied protocol request type.
IMPLIED_TYPES = {
    "characterize": "characterize",
    "batch": "batch",
    "views": "views",
    "configure": "configure",
    "jobs": "submit",
}

#: Request types that carry real characterization compute (admission
#: control applies); everything else is bookkeeping-cheap.
_GOVERNED_TYPES = ("characterize", "batch", "submit")


def status_for(payload: Mapping) -> int:
    """The HTTP status mirroring a response payload's error code."""
    if payload.get("ok", True):
        return 200
    code = (payload.get("error") or {}).get("code", ErrorCode.ERROR)
    return STATUS_FOR_CODE.get(code, 400)


@dataclass(frozen=True)
class JsonReply:
    """A JSON response: payload dict, HTTP status, extra headers."""

    payload: dict
    status: int
    headers: tuple = ()


@dataclass(frozen=True)
class EventStreamReply:
    """This request becomes an SSE stream of ``job_id``'s event log,
    resuming after sequence number ``after`` (0 = from the start)."""

    job_id: str
    after: int = 0


@dataclass
class GatewayPolicy:
    """Tunable production-traffic limits, shared by both front-ends.

    The defaults admit everything and never reject a submission — a
    policy-free deployment behaves exactly like the pre-gateway server.
    """

    #: Most open (pending + running) jobs before submissions get 429.
    #: None = unbounded.
    max_pending_jobs: int | None = None
    #: Per-client token-bucket rate (requests/second); None = off.
    client_rate: float | None = None
    client_burst: float | None = None
    #: Per-table token-bucket rate (requests/second); None = off.
    table_rate: float | None = None
    table_burst: float | None = None
    #: Seconds a blocked SSE write may stall before the subscriber is
    #: evicted (the bounded per-subscriber buffer, in time units).
    sse_write_timeout: float = 10.0
    #: Async front-end: high-water mark (bytes) of one subscriber's
    #: transport write buffer before writes start waiting on drain.
    sse_buffer_bytes: int = 64 * 1024
    #: Seconds of idle stream before a ``: keepalive`` comment.
    keepalive_seconds: float = 1.0
    #: Retry-After hint (seconds) on bounded-queue rejections.
    queue_retry_after: float = 1.0

    admission: AdmissionController = field(init=False, repr=False)

    def __post_init__(self):
        self.admission = AdmissionController(
            client_rate=self.client_rate, client_burst=self.client_burst,
            table_rate=self.table_rate, table_burst=self.table_burst)


class GatewayMetrics:
    """Thread-safe counters for gateway health (surfaced on /healthz)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._open = 0
        self._peak = 0
        self._total = 0
        self._evicted = 0
        self._throttled = {"client": 0, "table": 0}
        self._queue_rejected = 0

    def stream_opened(self) -> None:
        with self._lock:
            self._open += 1
            self._total += 1
            self._peak = max(self._peak, self._open)

    def stream_closed(self) -> None:
        with self._lock:
            self._open -= 1

    def stream_evicted(self) -> None:
        with self._lock:
            self._evicted += 1

    def throttled(self, scope: str) -> None:
        with self._lock:
            self._throttled[scope] = self._throttled.get(scope, 0) + 1

    def queue_rejected(self) -> None:
        with self._lock:
            self._queue_rejected += 1

    @property
    def open_streams(self) -> int:
        with self._lock:
            return self._open

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evicted

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "open_streams": self._open,
                "peak_streams": self._peak,
                "streams_total": self._total,
                "evicted": self._evicted,
                "throttled": dict(self._throttled),
                "queue_rejected": self._queue_rejected,
            }


def _header(headers: Mapping | None, name: str) -> str | None:
    """Case-insensitive header lookup over dicts and HTTPMessages."""
    if headers is None:
        return None
    value = headers.get(name)
    if value is None and hasattr(headers, "keys"):
        lowered = name.lower()
        for key in headers.keys():
            if str(key).lower() == lowered:
                return headers.get(key)
    return value


class GatewayRoutes:
    """The shared route table bound to one :class:`ZiggyService`.

    Stateless per request; owns the policy, the metrics and the v1
    compatibility adapter so every front-end shares one of each.
    """

    def __init__(self, service, policy: GatewayPolicy | None = None,
                 metrics: GatewayMetrics | None = None,
                 frontend: str = "threaded"):
        self.service = service
        self.policy = policy if policy is not None else GatewayPolicy()
        self.metrics = metrics if metrics is not None else GatewayMetrics()
        self.frontend = frontend
        # Lazy import: app.api imports the service layer; importing it
        # at module top would be circular.
        from repro.app.api import ZiggyApi
        self.legacy_api = ZiggyApi(service=service)

    # -- replies -----------------------------------------------------------------

    def _json(self, payload: dict, status: int | None = None,
              headers: tuple = ()) -> JsonReply:
        return JsonReply(payload=payload,
                         status=status if status is not None
                         else status_for(payload),
                         headers=headers)

    def _error(self, code: str, message: str,
               status: int | None = None) -> JsonReply:
        return self._json(ApiError(code=code, message=message).to_dict(),
                          status=status)

    def _throttled_reply(self, exc: ThrottledError) -> JsonReply:
        error = ApiError(code=ErrorCode.THROTTLED, message=str(exc),
                         detail={"retry_after": round(exc.retry_after, 3),
                                 "scope": exc.scope})
        # HTTP Retry-After is integer delta-seconds; the exact float
        # rides in the error detail for clients that want finer pacing.
        retry_after = max(1, math.ceil(exc.retry_after))
        return JsonReply(payload=error.to_dict(), status=429,
                         headers=(("Retry-After", str(retry_after)),))

    # -- admission / backpressure ------------------------------------------------

    def _govern(self, payload: Any) -> JsonReply | None:
        """Apply admission control and the bounded submission queue.

        Returns the 429 reply when the request must not proceed, None
        when it may.  Only dict payloads of governed types are checked —
        malformed requests fall through to the protocol parser, whose
        structured error is more useful than a rate-limit verdict.
        """
        if not isinstance(payload, Mapping):
            return None
        rtype = payload.get("type")
        if rtype not in _GOVERNED_TYPES:
            return None
        inner = payload.get("request") if rtype == "submit" else payload
        if not isinstance(inner, Mapping):
            inner = {}
        client_id = str(inner.get("client_id") or "default")
        table = inner.get("table")
        policy = self.policy
        decision = policy.admission.admit(
            client_id, str(table) if table else "(default)")
        if not decision:
            self.metrics.throttled(decision.scope or "client")
            return self._throttled_reply(ThrottledError(
                f"rate limit exceeded for {decision.scope} "
                f"{client_id if decision.scope == 'client' else table or '(default)'!r}",
                retry_after=decision.retry_after,
                scope=decision.scope or "client"))
        if rtype == "submit" and policy.max_pending_jobs is not None:
            open_jobs = self.service.jobs.open_jobs()
            if open_jobs >= policy.max_pending_jobs:
                self.metrics.queue_rejected()
                return self._throttled_reply(ThrottledError(
                    f"job queue is full ({open_jobs} open jobs, "
                    f"limit {policy.max_pending_jobs})",
                    retry_after=policy.queue_retry_after,
                    scope="queue"))
        return None

    # -- observability payloads --------------------------------------------------

    def gateway_report(self) -> dict:
        """The gateway section of /healthz and /v2/state."""
        report = self.metrics.snapshot()
        report["frontend"] = self.frontend
        report["admission"] = self.policy.admission.describe()
        report["max_pending_jobs"] = self.policy.max_pending_jobs
        return report

    def healthz(self) -> JsonReply:
        from repro import __version__
        service = self.service
        executor = service.executor.describe()
        state = service.state
        persistence: dict[str, Any] = {"enabled": state is not None}
        if state is not None:
            persistence["state_dir"] = state.state_dir
            journal = state.journal.stats()
            persistence["journal"] = {
                "segments": journal["segments"],
                "bytes": journal["bytes"],
                "appends": journal["appends"],
            }
            snapshots = state.snapshots.stats()
            persistence["snapshots"] = {
                "count": snapshots["count"],
                "bytes": snapshots["bytes"],
                "loaded": snapshots["loaded"],
            }
        return self._json({
            "ok": True, "protocol": PROTOCOL_VERSION,
            "version": __version__,
            "uptime_seconds": round(service.uptime_seconds, 3),
            "executor": executor,
            # Per-shard respawn counts, surfaced even when zero so
            # probes need no key checks (local backends report {}).
            "restarts": executor.get("restarts", {}),
            "persistence": persistence,
            # Saturation and persistence-fault signals: a healthy 200
            # with a non-zero journal_errors count is a degraded node.
            "jobs": {"open": service.jobs.open_jobs(),
                     "journal_errors": service.jobs.journal_errors},
            "gateway": self.gateway_report(),
            "tables": list(service.database.table_names()),
        })

    # -- verbs -------------------------------------------------------------------

    def handle_get(self, path: str, headers: Mapping | None = None
                   ) -> JsonReply | EventStreamReply:
        """Route one GET; returns a reply object, never raises."""
        path = path.rstrip("/")
        if path in ("", "/healthz"):
            return self.healthz()
        if path == "/v2/state":
            payload = self.service.dispatch({"type": "state"})
            if payload.get("ok"):
                payload["gateway"] = json_safe(self.gateway_report())
            return self._json(payload)
        if path == "/v2/tables":
            return self._json(self.service.dispatch({"type": "tables"}))
        if path.startswith("/v2/jobs/") and path.endswith("/events"):
            job_id = path[len("/v2/jobs/"):-len("/events")]
            after = 0
            raw = _header(headers, "Last-Event-ID")
            if raw:
                try:
                    after = max(0, int(str(raw).strip()))
                except ValueError:
                    pass  # a garbled cursor restarts from the beginning
            return EventStreamReply(job_id=job_id, after=after)
        if path.startswith("/v2/jobs/"):
            job_id = path[len("/v2/jobs/"):]
            return self._json(self.service.dispatch(
                {"type": "job", "job_id": job_id, "op": "status"}))
        return self._error(ErrorCode.BAD_REQUEST,
                           f"no route for GET {path or '/'}", status=404)

    def stream_precheck(self, job_id: str) -> JsonReply | None:
        """404 (as a JSON reply) before a front-end commits to SSE."""
        try:
            self.service.job_status(job_id)
        except ReproError as exc:
            return self._json(ApiError.from_exception(exc).to_dict())
        return None

    def _dispatch_payload(self, path: str, body: Any) -> tuple[bool, Any]:
        """Normalize a POST body into the protocol payload it dispatches.

        Returns ``(routed, payload)`` — ``routed`` is False when the
        path has no dispatching route (404 territory; /v1 and cancel are
        handled separately).  The implied-type suffixes
        (``/v2/characterize`` etc.) get their ``type`` tag injected here
        so governance and dispatch always see the same payload.
        """
        if path == "/v2":
            return True, body
        if path.startswith("/v2/"):
            implied = IMPLIED_TYPES.get(path[len("/v2/"):])
            if implied is not None:
                payload = dict(body) if isinstance(body, Mapping) else body
                if isinstance(payload, dict):
                    if implied == "submit":
                        # POST /v2/jobs accepts a characterize request
                        # (bare or tagged) and always submits it as a
                        # job; a pre-wrapped submit envelope passes
                        # through.
                        if payload.get("type") != "submit":
                            payload = {"type": "submit",
                                       "request": {**payload,
                                                   "type": "characterize"}}
                    else:
                        payload.setdefault("type", implied)
                return True, payload
        return False, None

    def govern_post(self, path: str, body: Any) -> JsonReply | None:
        """Admission/backpressure verdict for a POST, without dispatch.

        The async front-end calls this *on the event loop* before
        bridging to its dispatch pool, so 429s are served instantly even
        when every dispatch thread is busy; it then passes
        ``governed=True`` to :meth:`handle_post` so the request is not
        double-charged.
        """
        routed, payload = self._dispatch_payload(path.rstrip("/"), body)
        if not routed:
            return None
        return self._govern(payload)

    def handle_post(self, path: str, body: Any,
                    governed: bool = False) -> JsonReply:
        """Route one POST with a decoded JSON body; never raises.

        ``governed=True`` skips admission/backpressure (the caller
        already ran :meth:`govern_post` for this request).
        """
        path = path.rstrip("/")
        if path == "/v1":
            if not isinstance(body, Mapping):
                return self._json({"ok": False,
                                   "error": "v1 request must be an object",
                                   "code": ErrorCode.BAD_REQUEST},
                                  status=400)
            response = self.legacy_api.handle(dict(body))
            return self._json(response,
                              status=200 if response.get("ok") else 400)
        if path.startswith("/v2/jobs/") and path.endswith("/cancel"):
            job_id = path[len("/v2/jobs/"):-len("/cancel")]
            return self._json(self.service.dispatch(
                {"type": "job", "job_id": job_id, "op": "cancel"}))
        routed, payload = self._dispatch_payload(path, body)
        if routed:
            if not governed:
                rejected = self._govern(payload)
                if rejected is not None:
                    return rejected
            return self._json(self.service.dispatch(payload))
        return self._error(ErrorCode.BAD_REQUEST,
                           f"no route for POST {path or '/'}", status=404)
