"""The asyncio front-end: C10k SSE multiplexing on one event loop.

The threaded server (:mod:`repro.service.server`) pins one OS thread
per connection, so a few hundred concurrent ``GET /v2/jobs/<id>/events``
subscribers exhaust the process long before the executor backends are
the bottleneck.  This front-end multiplexes *thousands* of those
streams on a single event loop:

* **SSE fan-out is loop-native.**  Each subscriber is a coroutine that
  polls the job's event log non-blockingly (``timeout=0``) and parks on
  an :class:`asyncio.Event`.  The wakeup comes from the job side:
  :meth:`JobManager.watch` registers a ``loop.call_soon_threadsafe``
  ping that fires whenever the job appends an event, finishes or is
  pruned — no thread per subscriber, no condition-variable polling.
* **Compute never runs on the loop.**  JSON routes are bridged onto a
  small thread pool with ``loop.run_in_executor``; the work itself
  still runs wherever the service's executor backend puts it (thread
  pool or worker-process shards).  Admission control and backpressure
  are checked *on the loop* before the bridge, so 429s are served
  instantly even when every dispatch thread is busy — which is exactly
  the saturation scenario they exist for.
* **Slow consumers are evicted, not accumulated.**  Every subscriber's
  transport write buffer is bounded (``GatewayPolicy.sse_buffer_bytes``);
  when a client stops draining its socket and a write stays parked past
  ``sse_write_timeout``, the subscriber gets a best-effort
  ``: client-evicted`` comment and its transport is aborted.  Healthy
  subscribers never wait on a stalled one.
* **Serialization is shared.**  An SSE block is rendered once per
  ``(job, seq)`` and the bytes are reused across all subscribers of
  that job, so fanning one event out to a thousand streams costs a
  thousand socket writes, not a thousand ``json.dumps``.

Route logic, payload bytes, admission and metrics all come from
:class:`~repro.gateway.routes.GatewayRoutes` — the same object the
threaded server uses — so the two front-ends are byte-identical at the
protocol level and differ only in their concurrency model.  The public
surface mirrors :class:`~repro.service.server.ZiggyServer`
(``serve_forever`` / ``shutdown`` / ``server_close`` / ``close`` /
``server_address``), so servers are interchangeable in tests and the
CLI.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.errors import ReproError
from repro.gateway.routes import (
    EventStreamReply,
    GatewayPolicy,
    GatewayRoutes,
    JsonReply,
)
from repro.service.protocol import ApiError, ProtocolError, json_safe
from repro.service.service import ZiggyService

#: HTTP reason phrases for the statuses this server emits.
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout", 409: "Conflict",
    429: "Too Many Requests", 500: "Internal Server Error",
}

#: Seconds an idle kept-alive connection may sit between requests.
_IDLE_TIMEOUT = 10.0

#: Seconds allotted to reading one request head + body.
_READ_TIMEOUT = 10.0

#: Most serialized SSE blocks cached per job (seq -> bytes).
_SSE_CACHE_BLOCKS = 4096


def _sse_block(seq: int, kind: str, data: str) -> bytes:
    """One SSE frame, byte-identical to the threaded server's."""
    return f"id: {seq}\nevent: {kind}\ndata: {data}\n\n".encode("utf-8")


class AsyncGateway:
    """The asyncio HTTP/SSE server bound to one :class:`ZiggyService`.

    Binds its listening socket synchronously in the constructor (so
    ``server_address`` is valid immediately, like the stdlib server) and
    runs the event loop inside :meth:`serve_forever` — typically on a
    dedicated thread, with :meth:`shutdown` called from any other.
    """

    def __init__(self, address: tuple[str, int], service: ZiggyService,
                 verbose: bool = False, policy: GatewayPolicy | None = None,
                 dispatch_threads: int = 16):
        self.service = service
        self.verbose = verbose
        self.routes = GatewayRoutes(service, policy=policy, frontend="async")
        self._socket = socket.create_server(address, backlog=1024)
        self._socket.setblocking(False)
        self._dispatch_threads = dispatch_threads
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._stopped = threading.Event()
        self._stopped.set()  # not serving yet
        self._conn_tasks: set[asyncio.Task] = set()
        self._executor: ThreadPoolExecutor | None = None
        #: job_id -> {"refs": n, "blocks": {seq: bytes}} — shared SSE
        #: serialization, touched only from the event loop.
        self._sse_cache: dict[str, dict[str, Any]] = {}
        self.shutdown_error: BaseException | None = None

    # -- lifecycle (threaded-server-compatible surface) --------------------------

    @property
    def server_address(self) -> tuple:
        return self._socket.getsockname()

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """Run the event loop until :meth:`shutdown` (blocking)."""
        loop = asyncio.new_event_loop()
        self._loop = loop
        self._stopped.clear()
        try:
            loop.run_until_complete(self._serve())
        finally:
            try:
                # A KeyboardInterrupt (Ctrl-C / SIGTERM) lands here with
                # the accept task still pending: cancel and drain so the
                # loop closes clean.
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(asyncio.gather(
                        *pending, return_exceptions=True))
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                loop.close()
                self._loop = None
                self._stopped.set()

    async def _serve(self) -> None:
        self._stop_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self._dispatch_threads,
            thread_name_prefix="ziggy-gateway")
        server = await asyncio.start_server(self._handle_connection,
                                            sock=self._socket)
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks,
                                     return_exceptions=True)
            self._executor.shutdown(wait=False)

    def shutdown(self) -> None:
        """Stop the accept loop and drain connections (thread-safe)."""
        loop = self._loop
        stop = self._stop_event
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already closed
        self._stopped.wait(timeout=30)

    def server_close(self) -> None:
        """Release the listening socket (idempotent)."""
        try:
            self._socket.close()
        except OSError:
            pass

    def close(self, shutdown_service: bool = True,
              wait: bool = True) -> None:
        """Drain and stop everything, like :meth:`ZiggyServer.close`."""
        self.shutdown()
        self.server_close()
        if shutdown_service:
            try:
                self.service.shutdown(wait=wait)
            except ReproError as exc:
                self.shutdown_error = exc

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    return
                method, path, headers, body = request
                keep_alive = await self._dispatch(method, path, headers,
                                                  body, writer)
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.TimeoutError, TimeoutError):
            return  # client vanished or stalled mid-request
        except asyncio.CancelledError:
            return  # server draining
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await asyncio.wait_for(writer.wait_closed(), timeout=1.0)
            except (asyncio.TimeoutError, TimeoutError, ConnectionError,
                    asyncio.CancelledError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> tuple[str, str, dict, bytes] | None:
        """Parse one HTTP/1.1 request; None on EOF/garbage/idle."""
        line = await asyncio.wait_for(reader.readline(),
                                      timeout=_IDLE_TIMEOUT)
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            raw = await asyncio.wait_for(reader.readline(),
                                         timeout=_READ_TIMEOUT)
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        body = b""
        if length:
            body = await asyncio.wait_for(reader.readexactly(length),
                                          timeout=_READ_TIMEOUT)
        path = target.split("?", 1)[0]
        return method, path, headers, body

    async def _dispatch(self, method: str, path: str, headers: dict,
                        body: bytes, writer: asyncio.StreamWriter) -> bool:
        """Route one request; returns whether to keep the connection."""
        loop = asyncio.get_running_loop()
        keep_alive = headers.get("connection", "").lower() != "close"
        if method == "GET":
            reply = await loop.run_in_executor(
                self._executor, self.routes.handle_get, path, headers)
            if isinstance(reply, EventStreamReply):
                await self._stream_job_events(writer, reply)
                return False  # SSE always ends the connection
            await self._write_json(writer, reply, keep_alive)
            return keep_alive
        if method == "POST":
            try:
                decoded = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                await self._write_json(writer, JsonReply(
                    payload=ApiError.from_exception(ProtocolError(
                        f"request body is not valid JSON: {exc}")).to_dict(),
                    status=400), keep_alive)
                return keep_alive
            # Admission control and the bounded submission queue are
            # checked on the loop: a saturated dispatch pool (the very
            # condition backpressure exists for) must not delay the 429.
            rejected = self.routes.govern_post(path, decoded)
            if rejected is not None:
                await self._write_json(writer, rejected, keep_alive)
                return keep_alive
            reply = await loop.run_in_executor(
                self._executor, lambda: self.routes.handle_post(
                    path, decoded, governed=True))
            await self._write_json(writer, reply, keep_alive)
            return keep_alive
        await self._write_json(writer, JsonReply(
            payload=ApiError(code="bad_request",
                             message=f"method {method} not supported"
                             ).to_dict(),
            status=405), keep_alive=False)
        return False

    async def _write_json(self, writer: asyncio.StreamWriter,
                          reply: JsonReply, keep_alive: bool) -> None:
        body = json.dumps(reply.payload).encode("utf-8")
        head = [f"HTTP/1.1 {reply.status} "
                f"{_REASONS.get(reply.status, 'OK')}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}"]
        for name, value in reply.headers:
            head.append(f"{name}: {value}")
        head.append("Connection: keep-alive" if keep_alive
                    else "Connection: close")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()

    # -- SSE streaming -----------------------------------------------------------

    async def _stream_job_events(self, writer: asyncio.StreamWriter,
                                 request: EventStreamReply) -> None:
        """Multiplex one job-event subscription on the loop.

        The subscriber never blocks a thread: it polls the event log
        with ``timeout=0`` and parks on an :class:`asyncio.Event` that
        the job's watcher pings from whichever thread records events.
        The wake flag is cleared *before* each poll, so an event landing
        between the poll and the park just re-wakes immediately — no
        lost wakeups, no polling loop.
        """
        loop = asyncio.get_running_loop()
        routes, service = self.routes, self.service
        job_id, after = request.job_id, request.after
        policy = routes.policy
        rejected = await loop.run_in_executor(
            self._executor, routes.stream_precheck, job_id)
        if rejected is not None:
            await self._write_json(writer, rejected, keep_alive=False)
            return
        wake = asyncio.Event()

        def ping() -> None:
            # Fired with the job lock held: hand off to the loop and
            # return immediately.
            try:
                loop.call_soon_threadsafe(wake.set)
            except RuntimeError:
                pass  # loop shut down mid-ping

        try:
            unwatch = service.watch_job(job_id, ping)
        except ReproError as exc:
            await self._write_json(
                writer, JsonReply(
                    payload=ApiError.from_exception(exc).to_dict(),
                    status=404),
                keep_alive=False)
            return
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-cache\r\n"
                     b"Connection: close\r\n\r\n")
        transport = writer.transport
        transport.set_write_buffer_limits(high=policy.sse_buffer_bytes)
        # Bound the kernel's send buffer too: a stalled client then
        # stops draining the transport quickly, instead of absorbing
        # megabytes of backlog before the high-water mark ever fills.
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF,
                                policy.sse_buffer_bytes)
            except OSError:
                pass
        cache = self._acquire_sse_cache(job_id)
        routes.metrics.stream_opened()
        try:
            while True:
                wake.clear()
                try:
                    events, finished = service.job_events(
                        job_id, after_seq=after, timeout=0)
                except ReproError:
                    # Pruned mid-stream (bounded retention): terminate
                    # like a vanished resource, not a hang.
                    writer.write(_sse_block(after + 1, "done",
                                            '{"status": "unknown"}'))
                    await self._drain_or_evict(writer)
                    return
                for event in events:
                    after = max(after, event.seq)
                    writer.write(self._sse_bytes(cache, event))
                if events and not await self._drain_or_evict(writer):
                    return
                if finished:
                    try:
                        status = service.job_status(job_id).status
                    except ReproError:  # pruned between the two calls
                        status = "unknown"
                    writer.write(_sse_block(after + 1, "done",
                                            json.dumps({"status": status})))
                    await self._drain_or_evict(writer)
                    return
                if self._stop_event is not None \
                        and self._stop_event.is_set():
                    return  # server draining
                if not events:
                    try:
                        await asyncio.wait_for(
                            wake.wait(), timeout=policy.keepalive_seconds)
                    except (asyncio.TimeoutError, TimeoutError):
                        writer.write(b": keepalive\n\n")
                        if not await self._drain_or_evict(writer):
                            return
        except (ConnectionError, ConnectionResetError):
            return  # client went away; nothing to clean up
        finally:
            unwatch()
            routes.metrics.stream_closed()
            self._release_sse_cache(job_id)

    async def _drain_or_evict(self, writer: asyncio.StreamWriter) -> bool:
        """Wait for the subscriber's buffer to drain; evict laggards.

        Returns False when the subscriber was evicted: its transport
        buffer stayed above the high-water mark past the policy's write
        timeout, meaning the client is not reading.  The eviction is a
        best-effort ``: client-evicted`` comment followed by a transport
        abort — the stalled socket must not leak, and healthy
        subscribers (their own coroutines) are never delayed.
        """
        policy = self.routes.policy
        try:
            await asyncio.wait_for(writer.drain(),
                                   timeout=policy.sse_write_timeout)
            return True
        except (asyncio.TimeoutError, TimeoutError):
            self.routes.metrics.stream_evicted()
            try:
                writer.write(b": client-evicted\n\n")
                writer.transport.abort()
            except Exception:  # noqa: BLE001 - already tearing down
                pass
            return False

    # -- shared SSE serialization ------------------------------------------------

    def _acquire_sse_cache(self, job_id: str) -> dict:
        entry = self._sse_cache.get(job_id)
        if entry is None:
            entry = {"refs": 0, "blocks": {}}
            self._sse_cache[job_id] = entry
        entry["refs"] += 1
        return entry

    def _release_sse_cache(self, job_id: str) -> None:
        entry = self._sse_cache.get(job_id)
        if entry is not None:
            entry["refs"] -= 1
            if entry["refs"] <= 0:
                del self._sse_cache[job_id]

    def _sse_bytes(self, cache: dict, event) -> bytes:
        blocks = cache["blocks"]
        block = blocks.get(event.seq)
        if block is None:
            block = _sse_block(event.seq, event.kind,
                               json.dumps(json_safe(event.data)))
            if len(blocks) < _SSE_CACHE_BLOCKS:
                blocks[event.seq] = block
        return block


def make_async_server(service: ZiggyService, host: str = "127.0.0.1",
                      port: int = 0, verbose: bool = False,
                      policy: GatewayPolicy | None = None,
                      dispatch_threads: int = 16) -> AsyncGateway:
    """Build (but do not start) an async gateway; ``port=0`` picks a
    free port.  The drop-in sibling of
    :func:`repro.service.server.make_server`."""
    return AsyncGateway((host, port), service, verbose=verbose,
                        policy=policy, dispatch_threads=dispatch_threads)
