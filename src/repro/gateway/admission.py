"""Admission control for the service front-ends: token buckets.

Compute-heavy requests (characterize, batch, job submission) pass
through an :class:`AdmissionController` before they reach the service.
The controller keeps one :class:`TokenBucket` per client ID and one per
table name; a request must win a token from *both* scopes (when both
are configured) or it is rejected with the number of seconds after
which a token will be available — the value the HTTP layer surfaces as
``Retry-After`` on a 429 response.

Token buckets, not sliding windows, because they are O(1) in memory and
time and allow controlled bursts: a bucket of capacity ``burst`` refills
at ``rate`` tokens per second, so a client can fire ``burst`` requests
back to back and then sustain ``rate`` requests/second — the classic
shape for interactive exploration traffic (a person clicks a few times,
then thinks).

Buckets are created lazily and the key space is bounded: beyond
``max_keys`` distinct clients/tables, the least-recently-used bucket is
dropped (a dropped bucket resurrects full, which only ever errs in the
caller's favour).  Everything is thread-safe — the threaded front-end
calls :meth:`AdmissionController.admit` from handler threads, the async
front-end from its event loop.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

#: Most distinct per-client / per-table buckets kept before LRU drop.
DEFAULT_MAX_KEYS = 4096


class TokenBucket:
    """A thread-safe token bucket (``rate`` tokens/s, ``burst`` deep).

    :meth:`try_acquire` either takes one token and returns ``0.0`` or
    leaves the bucket untouched and returns the seconds until a token
    will have accrued — never negative, never an exception.
    """

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_lock")

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ValueError(f"token rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be at least 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def try_acquire(self, now: float | None = None) -> float:
        """Take one token (returns 0.0) or report the wait in seconds."""
        now = time.monotonic() if now is None else now
        with self._lock:
            self._refill(now)
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return 0.0
            return (1.0 - self._tokens) / self.rate

    def peek(self, now: float | None = None) -> float:
        """The current token count (diagnostics only)."""
        now = time.monotonic() if now is None else now
        with self._lock:
            self._refill(now)
            return self._tokens


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission check."""

    #: True when the request may proceed.
    allowed: bool
    #: Seconds after which a retry can succeed (0.0 when allowed).
    retry_after: float = 0.0
    #: Which scope rejected: ``"client"`` or ``"table"`` (None if allowed).
    scope: str | None = None

    def __bool__(self) -> bool:
        return self.allowed


class _BucketMap:
    """A bounded, lazily populated key -> TokenBucket map (LRU)."""

    def __init__(self, rate: float, burst: float,
                 max_keys: int = DEFAULT_MAX_KEYS):
        self.rate = rate
        self.burst = burst
        self.max_keys = max_keys
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._lock = threading.Lock()

    def bucket(self, key: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst)
                self._buckets[key] = bucket
                while len(self._buckets) > self.max_keys:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(key)
            return bucket

    def __len__(self) -> int:
        with self._lock:
            return len(self._buckets)


class AdmissionController:
    """Per-client and per-table token-bucket admission.

    Args:
        client_rate / client_burst: sustained requests/second and burst
            depth allowed per client ID; ``client_rate=None`` disables
            the per-client scope entirely.
        table_rate / table_burst: the same, keyed on the target table —
            this bounds how hard any one (possibly popular) table can be
            hammered regardless of how many distinct clients pile on.
        max_keys: bound on distinct buckets kept per scope.

    A default-constructed controller admits everything (both scopes
    off), so wiring it unconditionally into a front-end costs nothing
    until limits are configured.
    """

    def __init__(self, client_rate: float | None = None,
                 client_burst: float | None = None,
                 table_rate: float | None = None,
                 table_burst: float | None = None,
                 max_keys: int = DEFAULT_MAX_KEYS):
        self._clients = (_BucketMap(client_rate,
                                    client_burst or max(1.0, client_rate),
                                    max_keys)
                         if client_rate is not None else None)
        self._tables = (_BucketMap(table_rate,
                                   table_burst or max(1.0, table_rate),
                                   max_keys)
                        if table_rate is not None else None)

    @property
    def enabled(self) -> bool:
        """Whether any scope is configured."""
        return self._clients is not None or self._tables is not None

    def admit(self, client_id: str | None,
              table: str | None) -> AdmissionDecision:
        """Check both scopes; reject with the *longer* retry horizon.

        The client bucket is charged first; when the table bucket then
        rejects, the client token is refunded — a rejected request must
        not burn the caller's budget (that would punish retrying exactly
        as instructed).
        """
        client_bucket = (self._clients.bucket(client_id or "default")
                         if self._clients is not None else None)
        if client_bucket is not None:
            wait = client_bucket.try_acquire()
            if wait > 0.0:
                return AdmissionDecision(False, retry_after=wait,
                                         scope="client")
        if self._tables is not None and table:
            wait = self._tables.bucket(table).try_acquire()
            if wait > 0.0:
                if client_bucket is not None:
                    with client_bucket._lock:
                        client_bucket._tokens = min(
                            client_bucket.burst, client_bucket._tokens + 1.0)
                return AdmissionDecision(False, retry_after=wait,
                                         scope="table")
        return AdmissionDecision(True)

    def describe(self) -> dict:
        """Configuration + live key counts (for /healthz)."""
        info: dict = {"enabled": self.enabled}
        if self._clients is not None:
            info["client"] = {"rate": self._clients.rate,
                              "burst": self._clients.burst,
                              "keys": len(self._clients)}
        if self._tables is not None:
            info["table"] = {"rate": self._tables.rate,
                             "burst": self._tables.burst,
                             "keys": len(self._tables)}
        return info
