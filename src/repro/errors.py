"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single exception type at the API boundary.  Subsystem
errors derive from intermediate classes (engine, statistics, search, ...)
to allow finer-grained handling.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Engine (columnar store / query language)
# ---------------------------------------------------------------------------


class EngineError(ReproError):
    """Base class for errors raised by the columnar engine."""


class SchemaError(EngineError):
    """A table or column definition is inconsistent.

    Examples: duplicate column names, mismatched column lengths, or an
    unknown column type.
    """


class UnknownColumnError(EngineError):
    """A query or API call referenced a column that does not exist."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = tuple(available)
        hint = ""
        if available:
            close = _closest(name, available)
            if close:
                hint = f" (did you mean {close!r}?)"
        super().__init__(f"unknown column {name!r}{hint}")


class UnknownTableError(EngineError):
    """A query referenced a table that is not registered in the database."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = tuple(available)
        super().__init__(f"unknown table {name!r}")


class QuerySyntaxError(EngineError):
    """The query text could not be parsed.

    Carries the offending position so front-ends can point at the error.
    """

    def __init__(self, message: str, position: int | None = None, text: str | None = None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            caret = " " * position + "^"
            message = f"{message}\n  {text}\n  {caret}"
        super().__init__(message)


class QueryTypeError(EngineError):
    """An expression combined operand types that are not compatible."""


class CsvFormatError(EngineError):
    """A CSV file could not be interpreted as a table."""


# ---------------------------------------------------------------------------
# Statistics substrate
# ---------------------------------------------------------------------------


class StatsError(ReproError):
    """Base class for statistics-layer errors."""


class InsufficientDataError(StatsError):
    """Not enough observations to compute the requested statistic.

    The statistics layer raises this instead of silently returning NaN so
    that callers can decide whether to skip a component or fail loudly.
    """

    def __init__(self, what: str, needed: int, got: int):
        self.what = what
        self.needed = needed
        self.got = got
        super().__init__(f"{what}: need at least {needed} observations, got {got}")


class DegenerateDataError(StatsError):
    """The data is degenerate for the requested statistic (e.g. zero
    variance where a scale estimate is required)."""


# ---------------------------------------------------------------------------
# Core (components, search, significance, pipeline)
# ---------------------------------------------------------------------------


class CoreError(ReproError):
    """Base class for errors raised by the characterization core."""


class ComponentError(CoreError):
    """A Zig-Component was mis-declared or mis-applied."""


class UnknownComponentError(ComponentError):
    """A component name was not found in the registry."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = tuple(available)
        msg = f"unknown Zig-Component {name!r}"
        if available:
            msg += f"; available: {', '.join(sorted(available))}"
        super().__init__(msg)


class ConfigError(CoreError):
    """A :class:`~repro.core.config.ZiggyConfig` value is invalid."""


class SearchError(CoreError):
    """View search failed (e.g. empty candidate set with impossible
    constraints, or a malformed dependency matrix)."""


class EmptySelectionError(CoreError):
    """The user's query selected no tuples (or all tuples), leaving one of
    the two groups empty; characterization is undefined in that case."""

    def __init__(self, n_inside: int, n_total: int):
        self.n_inside = n_inside
        self.n_total = n_total
        super().__init__(
            f"selection covers {n_inside} of {n_total} tuples; "
            "characterization requires both a non-empty selection and a "
            "non-empty complement"
        )


class ExplanationError(CoreError):
    """The explanation generator could not verbalize a view."""


# ---------------------------------------------------------------------------
# Service layer (protocol, jobs, server)
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for errors raised by the service layer."""


class ProtocolError(ServiceError):
    """A request or response payload does not conform to the protocol.

    Examples: missing required fields, an unknown message type, or an
    incompatible protocol version.
    """


class NoActiveQueryError(ServiceError):
    """A view/detail/dendrogram request arrived before any query ran in
    the client's session."""

    def __init__(self, client_id: str = "default"):
        self.client_id = client_id
        super().__init__(
            f"no active query in session {client_id!r}; run a "
            "characterization first")


class JobNotFoundError(ServiceError):
    """A job ID was not found in the job manager."""

    def __init__(self, job_id: str):
        self.job_id = job_id
        super().__init__(f"unknown job {job_id!r}")


class JobCancelled(ServiceError):
    """Raised inside a worker to abort a cancelled job cooperatively."""

    def __init__(self, job_id: str):
        self.job_id = job_id
        super().__init__(f"job {job_id!r} was cancelled")


class ThrottledError(ServiceError):
    """A request was rejected by admission control or a bounded queue.

    Maps to HTTP 429 with a ``Retry-After`` header; ``retry_after`` is
    the seconds after which a retry can succeed, ``scope`` names the
    limiter that fired (``client``, ``table`` or ``queue``).
    """

    def __init__(self, message: str, retry_after: float = 1.0,
                 scope: str = "client"):
        #: Protocol error code carried explicitly (like restored-job
        #: errors), so serialization never depends on the type mapping.
        self.error_code = "throttled"
        self.retry_after = float(retry_after)
        self.scope = scope
        super().__init__(message)


class JobInterruptedError(ServiceError):
    """A job was in flight when the coordinator stopped and the recovery
    policy chose not to re-run it (``--recover fail``)."""

    def __init__(self, job_id: str):
        self.job_id = job_id
        super().__init__(
            f"job {job_id!r} was interrupted by a coordinator restart "
            "and not resumed")


# ---------------------------------------------------------------------------
# Persistence (journal, snapshots, recovery)
# ---------------------------------------------------------------------------


class PersistenceError(ReproError):
    """Base class for durable-state errors (journal, snapshot store)."""


class RestoredJobError(ServiceError):
    """Stands in for a failed job's original exception after a restart.

    The original exception object does not survive the journal (only its
    protocol error code and message do); this carrier restores both, so
    a restored job's error serializes exactly as it did before the
    coordinator bounced.
    """

    def __init__(self, message: str, code: str = "error"):
        #: The original protocol error code (``ApiError.from_exception``
        #: prefers this attribute over re-deriving a code from the type).
        self.error_code = code
        super().__init__(message)


# ---------------------------------------------------------------------------
# Data generators / loaders
# ---------------------------------------------------------------------------


class DataError(ReproError):
    """Base class for dataset-layer errors."""


class UnknownDatasetError(DataError):
    """An unknown dataset name was requested from the registry."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = tuple(available)
        msg = f"unknown dataset {name!r}"
        if available:
            msg += f"; available: {', '.join(sorted(available))}"
        super().__init__(msg)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _closest(name: str, candidates: tuple[str, ...]) -> str | None:
    """Return the candidate with the smallest edit distance to ``name``.

    Only used to decorate error messages; returns ``None`` when nothing is
    reasonably close (distance greater than half the name length).
    """
    best: str | None = None
    best_d = len(name) // 2 + 1
    for cand in candidates:
        d = _edit_distance(name.lower(), cand.lower(), cutoff=best_d)
        if d < best_d:
            best, best_d = cand, d
    return best


def _edit_distance(a: str, b: str, cutoff: int = 1 << 30) -> int:
    """Levenshtein distance with an early-exit ``cutoff``."""
    if abs(len(a) - len(b)) >= cutoff:
        return cutoff
    prev = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        cur = [i]
        row_min = i
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            val = min(prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost)
            cur.append(val)
            row_min = min(row_min, val)
        if row_min >= cutoff:
            return cutoff
        prev = cur
    return prev[-1]
