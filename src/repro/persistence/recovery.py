"""Crash-restart recovery — replay the journal, re-arm the jobs.

Run once at boot, after the catalog is registered and before the server
accepts traffic.  The orchestrator folds the replayed journal into
per-job final state (:func:`repro.persistence.journal.fold_records`) and
then, job by job in id order:

* **terminal** jobs (``done`` / ``failed`` / ``cancelled`` /
  ``interrupted``) are adopted back into the
  :class:`~repro.service.jobs.JobManager` verbatim — result, error,
  event log and timings — so ``GET /v2/jobs/<id>`` answers exactly as it
  did before the restart;
* **in-flight** jobs (``pending`` / ``running`` at the crash) follow the
  recovery *policy*:

  - ``resume`` (the default): the journaled request is re-submitted
    through the service's configured executor backend under its original
    job id.  A ``coordinator-restart`` event is appended first (the
    restart analogue of the executor's ``worker-restart``), so a client
    reconnecting its event stream sees the seam, then the re-run's
    events — event ids stay monotonic across the restart because the
    restored log keeps its journaled sequence numbers;
  - ``fail``: the job is adopted in the terminal ``interrupted`` state
    (a typed :class:`~repro.errors.JobInterruptedError`), queryable but
    never re-run;
  - ``discard``: the job is forgotten (and journal-pruned, so the next
    restart does not see it again).

Jobs whose journaled request cannot be reconstructed (foreign payloads,
an unknown table after a catalog change) degrade from ``resume`` to
``interrupted`` rather than failing the boot: recovery must never make a
healthy server unstartable.

Snapshots need no orchestration here — they are verified and merged at
table-registration time (content fingerprints make staleness
unrepresentable); recovery only *reports* how many were restored.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import JobInterruptedError, ReproError, RestoredJobError
from repro.persistence.journal import fold_records
from repro.persistence.state import DurableState
from repro.service.protocol import (
    CharacterizeRequest,
    CharacterizeResponse,
    ErrorCode,
    JobEvent,
    job_event_from_stage,
)

#: Accepted ``--recover`` policies.
RECOVERY_POLICIES = ("resume", "fail", "discard")

#: The event kind recovery stamps on a resumed job's log.
COORDINATOR_RESTART_KIND = "coordinator-restart"


@dataclass
class RecoveryReport:
    """What one boot-time recovery did (surfaced by ``/v2/state``)."""

    policy: str
    jobs_seen: int = 0
    restored_terminal: int = 0
    resumed: int = 0
    interrupted: int = 0
    discarded: int = 0
    events_restored: int = 0
    snapshots_loaded: int = 0
    replay: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "policy": self.policy, "jobs_seen": self.jobs_seen,
            "restored_terminal": self.restored_terminal,
            "resumed": self.resumed, "interrupted": self.interrupted,
            "discarded": self.discarded,
            "events_restored": self.events_restored,
            "snapshots_loaded": self.snapshots_loaded,
            "replay": dict(self.replay),
        }

    def summary(self) -> str:
        """One log line for ``repro serve`` startup output."""
        return (f"recovery ({self.policy}): {self.jobs_seen} journaled "
                f"job(s) — {self.restored_terminal} terminal restored, "
                f"{self.resumed} resumed, {self.interrupted} interrupted, "
                f"{self.discarded} discarded; "
                f"{self.events_restored} event(s) replayed, "
                f"{self.snapshots_loaded} snapshot(s) warm")


def _restore_result(raw) -> object:
    """A journaled result back into its live shape (best effort)."""
    if isinstance(raw, dict) and raw.get("type") == CharacterizeResponse.TYPE:
        try:
            return CharacterizeResponse.from_dict(raw)
        except ReproError:
            return raw
    return raw


def _restore_error(raw: dict | None) -> BaseException | None:
    if not raw:
        return None
    return RestoredJobError(str(raw.get("message", "job failed")),
                            code=str(raw.get("code", ErrorCode.ERROR)))


def _restore_events(journaled: list) -> list:
    """Journaled ``(seq, kind, data)`` triples into the manager's event
    log shape, with the payloads as typed wire events (the only consumer
    of a restored log is the service, which streams :class:`JobEvent`)."""
    events = []
    for seq, kind, data in journaled:
        data = data if isinstance(data, dict) else {"info": data}
        events.append((int(seq), kind, JobEvent(seq=int(seq), kind=kind,
                                                data=data)))
    return events


def recover_jobs(service, state: DurableState,
                 policy: str = "resume") -> RecoveryReport:
    """Replay ``state``'s journal into ``service``; returns the report.

    ``service`` is a :class:`~repro.service.service.ZiggyService` whose
    catalog is already registered (resume re-executes against it).
    Idempotent in effect: adopted jobs are journaled again only through
    compaction, and a second call on a freshly recovered journal finds
    the same state it just wrote.
    """
    if policy not in RECOVERY_POLICIES:
        raise ReproError(f"unknown recovery policy {policy!r} "
                         f"(available: {', '.join(RECOVERY_POLICIES)})")
    records, replay_stats = state.journal.replay()
    jobs = fold_records(records)
    report = RecoveryReport(policy=policy, jobs_seen=len(jobs),
                            replay=replay_stats.to_dict(),
                            snapshots_loaded=state.snapshots.counters.loaded)
    manager = service.jobs
    discarded: list[str] = []
    for journaled in sorted(jobs.values(), key=lambda job: job.number):
        events = _restore_events(journaled.events)
        report.events_restored += len(events)
        if journaled.finished:
            manager.adopt(
                journaled.job_id, status=journaled.status,
                events=events,
                result=_restore_result(journaled.result),
                error=_restore_error(journaled.error),
                timings=journaled.timings,
                journal_payload=journaled.payload)
            report.restored_terminal += 1
            continue
        # In flight at the crash: the policy decides.
        if policy == "discard":
            discarded.append(journaled.job_id)
            report.discarded += 1
            continue
        if policy == "resume":
            try:
                request = CharacterizeRequest.from_dict(journaled.payload)
            except ReproError:
                request = None
            if request is not None:
                manager.adopt(journaled.job_id, status="pending",
                              events=events,
                              journal_payload=journaled.payload)
                manager.record_external_event(
                    journaled.job_id, COORDINATOR_RESTART_KIND,
                    {"policy": policy, "restored_events": len(events)},
                    event_mapper=job_event_from_stage)
                try:
                    service.resume_job(journaled.job_id, request)
                    report.resumed += 1
                    continue
                except Exception as exc:  # noqa: BLE001
                    # An unresumable request — table gone, backend shut,
                    # or any fault a wedged executor raises: degrade to
                    # interrupted with the reason on record.  Recovery
                    # must never make a healthy server unstartable.
                    manager.record_external_event(
                        journaled.job_id, "recovery-error",
                        {"reason": str(exc)},
                        event_mapper=job_event_from_stage)
                    manager.fail_adopted(
                        journaled.job_id,
                        JobInterruptedError(journaled.job_id))
                    report.interrupted += 1
                    continue
        # policy == "fail", or resume could not reconstruct the request
        manager.adopt(journaled.job_id, status="interrupted",
                      events=events,
                      error=JobInterruptedError(journaled.job_id),
                      timings=journaled.timings,
                      journal_payload=journaled.payload,
                      journal=True)
        report.interrupted += 1
    if discarded:
        state.journal.append({"t": "prune", "jobs": discarded})
    state.recovery_report = report
    return report
