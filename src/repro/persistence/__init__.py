"""The durable state subsystem: job journal, snapshot store, recovery.

Everything the service keeps on disk lives here (``docs/persistence.md``
is the operator's guide)::

    state.py       DurableState: one --state-dir, composed of
    journal.py       the append-only CRC-framed job journal, and
    snapshots.py     the atomic warm-cache snapshot store;
    recovery.py    the boot-time orchestrator that replays the journal
                   and re-arms interrupted jobs per --recover policy.

Layering: ``persistence`` sits beside ``runtime`` — it knows the core's
:class:`StatsCache` and the service's wire protocol (for faithful
restore), and the service layer owns the single :class:`DurableState`
instance and threads it into the job manager and table registration.
Without a state directory the whole subsystem is absent and the service
is exactly as in-memory as it ever was.
"""

from repro.persistence.journal import (
    DEFAULT_SEGMENT_BYTES,
    FSYNC_POLICIES,
    JobJournal,
    JournaledJob,
    ReplayStats,
    event_record,
    fold_records,
    prune_record,
    state_record,
    submit_record,
)
from repro.persistence.recovery import (
    COORDINATOR_RESTART_KIND,
    RECOVERY_POLICIES,
    RecoveryReport,
    recover_jobs,
)
from repro.persistence.snapshots import SnapshotStore
from repro.persistence.state import (
    DEFAULT_COMPACT_BYTES,
    DEFAULT_SNAPSHOT_INTERVAL,
    DurableState,
)

__all__ = [
    "COORDINATOR_RESTART_KIND",
    "DEFAULT_COMPACT_BYTES",
    "DEFAULT_SEGMENT_BYTES",
    "DEFAULT_SNAPSHOT_INTERVAL",
    "DurableState",
    "FSYNC_POLICIES",
    "JobJournal",
    "JournaledJob",
    "RECOVERY_POLICIES",
    "RecoveryReport",
    "ReplayStats",
    "SnapshotStore",
    "event_record",
    "fold_records",
    "prune_record",
    "recover_jobs",
    "state_record",
    "submit_record",
]
