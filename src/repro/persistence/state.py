"""`DurableState` — one object owning everything the service keeps on disk.

Layout under one ``--state-dir``::

    <state_dir>/
    ├── journal/    append-only job journal (repro.persistence.journal)
    └── snapshots/  warm-cache blobs        (repro.persistence.snapshots)

The service holds exactly one :class:`DurableState` (or none — the
default stays fully in-memory); the job manager borrows its journal,
table registration consults its snapshot store, and a background
**snapshot daemon** walks the runtime's statistics registry on a cadence,
writing blobs for caches that grew since their last save and compacting
the journal when it outgrows its threshold.  A clean drain does one
final pass of both before closing the journal, so a graceful stop leaves
a compact, fully warm state directory behind.

One state directory belongs to one coordinator at a time; running two
services against the same directory is undefined (the journal would
interleave two id sequences).
"""

from __future__ import annotations

import os
import threading
import time

from repro.persistence.journal import DEFAULT_SEGMENT_BYTES, JobJournal
from repro.persistence.snapshots import SnapshotStore

#: Default seconds between snapshot-daemon passes.
DEFAULT_SNAPSHOT_INTERVAL = 30.0

#: Journal size past which the daemon compacts (the unit is "journal
#: bytes on disk", so rotation and compaction compose predictably).
DEFAULT_COMPACT_BYTES = 32 << 20  # 32 MiB


class DurableState:
    """The on-disk half of a service: journal + snapshots + the daemon.

    Args:
        state_dir: root directory (created if missing).
        snapshot_interval: seconds between background snapshot passes
            (0 disables the daemon; drain-time snapshots still happen).
        fsync: journal fsync policy (see :mod:`repro.persistence.journal`).
        max_segment_bytes: journal segment rotation threshold.
        compact_bytes: journal size that triggers a background compaction.
    """

    def __init__(self, state_dir: str,
                 snapshot_interval: float = DEFAULT_SNAPSHOT_INTERVAL,
                 fsync: str = "rotate",
                 max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 compact_bytes: int = DEFAULT_COMPACT_BYTES):
        self.state_dir = os.path.abspath(state_dir)
        # Owner-only: snapshot blobs are pickled, so a state dir
        # writable by another user would be arbitrary code execution at
        # table registration (trust boundary in docs/persistence.md).
        # The mode argument is the guarantee — the umask can only strip
        # bits from 0o700, never widen it, so the directory is never
        # observable with foreign write access.  The chmod only corrects
        # an over-restrictive umask; an existing directory keeps the
        # operator's chosen mode.
        created = not os.path.isdir(self.state_dir)
        os.makedirs(self.state_dir, mode=0o700, exist_ok=True)
        if created:
            try:
                os.chmod(self.state_dir, 0o700)
            except OSError:
                pass
        self.journal = JobJournal(os.path.join(self.state_dir, "journal"),
                                  max_segment_bytes=max_segment_bytes,
                                  fsync=fsync)
        self.snapshots = SnapshotStore(os.path.join(self.state_dir,
                                                    "snapshots"))
        self.snapshot_interval = float(snapshot_interval)
        self.compact_bytes = int(compact_bytes)
        #: Set by :func:`repro.persistence.recovery.recover_jobs` at boot.
        self.recovery_report = None
        self.started_at = time.time()
        #: fingerprint -> table name, fed by the service's registrations
        #: (blob metadata and ``/v2/state`` listings want names).
        self._table_names: dict[str, str] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._daemon: threading.Thread | None = None
        self._runtime = None
        self._jobs = None
        self._closed = False

    # -- registration hooks ------------------------------------------------------

    def note_table(self, name: str, fingerprint: str) -> None:
        """Remember a fingerprint's catalog name (idempotent)."""
        with self._lock:
            self._table_names.setdefault(fingerprint, name)

    def table_name(self, fingerprint: str) -> str:
        with self._lock:
            return self._table_names.get(fingerprint, "")

    # -- the snapshot daemon -----------------------------------------------------

    def attach(self, runtime, jobs) -> None:
        """Bind the live runtime and job manager and start the daemon.

        The daemon is optional plumbing: with ``snapshot_interval <= 0``
        the bind still happens (drain-time passes need it) but no thread
        starts.
        """
        self._runtime = runtime
        self._jobs = jobs
        if self.snapshot_interval > 0 and self._daemon is None:
            self._daemon = threading.Thread(target=self._daemon_loop,
                                            name="ziggy-snapshotd",
                                            daemon=True)
            self._daemon.start()

    def _daemon_loop(self) -> None:
        while not self._stop.wait(self.snapshot_interval):
            try:
                self.snapshot_pass()
            except Exception:  # noqa: BLE001 - the daemon must not die
                pass
            try:
                self.maybe_compact()
            except Exception:  # noqa: BLE001
                pass

    def snapshot_pass(self) -> int:
        """Write blobs for every registry cache that changed; returns the
        number of blobs written."""
        runtime = self._runtime
        if runtime is None or self._closed:
            return 0
        written = 0
        for fingerprint, cache in runtime.stats.items():
            if self.snapshots.save(fingerprint, cache,
                                   table_name=self.table_name(fingerprint)):
                written += 1
        return written

    def compaction_safe(self) -> bool:
        """Whether compacting against the live job table is lossless.

        Compaction rewrites the journal to exactly what the job manager
        currently holds — safe only once any pre-existing journaled
        history has been replayed into it.  Until
        :func:`~repro.persistence.recovery.recover_jobs` sets
        :attr:`recovery_report`, a journal that arrived with segments
        from a previous run must not be compacted: the daemon would be
        rewriting it to a still-empty job table, silently deleting every
        journaled job before recovery could replay them (and racing the
        replay itself).  A journal born empty this run has no such
        history, so it never needs the gate.
        """
        return (self.recovery_report is not None
                or self.journal.preexisting_segments == 0)

    def maybe_compact(self) -> bool:
        """Compact the journal when it outgrew ``compact_bytes``.

        Delegates to the job manager, whose append lock makes the
        snapshot-and-swap atomic with respect to in-flight journal
        writes (a record landing mid-compaction must not be dropped
        with the deleted history).  A no-op until
        :meth:`compaction_safe` — never before boot recovery replayed a
        pre-existing journal.
        """
        jobs = self._jobs
        if jobs is None or self._closed or not self.compaction_safe():
            return False
        if self.journal.total_bytes() <= self.compact_bytes:
            return False
        jobs.compact_journal()
        return True

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Final snapshot pass, journal compaction, journal close
        (idempotent).  Called by the service *after* the job backend has
        drained, so every terminal record is already appended."""
        if self._closed:
            return
        self._stop.set()
        daemon = self._daemon
        if daemon is not None:
            daemon.join(timeout=10.0)
        try:
            self.snapshot_pass()
        except Exception:  # noqa: BLE001 - drain must complete
            pass
        jobs = self._jobs
        if jobs is not None and self.compaction_safe():
            try:
                jobs.compact_journal()
            except Exception:  # noqa: BLE001
                pass
        self._closed = True
        self.journal.close()

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        """The ``/v2/state`` payload core."""
        report = self.recovery_report
        return {
            "state_dir": self.state_dir,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "snapshot_interval": self.snapshot_interval,
            "journal": self.journal.stats(),
            "snapshots": self.snapshots.stats(),
            "recovery": report.to_dict() if report is not None else None,
        }
