"""The append-only job journal — every job's life, on disk.

The journal is the write-ahead record of the service's job state: each
submission, state change, stage event and terminal outcome is appended
as one framed record, so a coordinator that dies mid-flight can replay
the log and pick up exactly where it stopped (see
:mod:`repro.persistence.recovery` for the replay semantics and
``docs/persistence.md`` for the full format specification).

Format, deliberately boring::

    journal-00000001.log            one segment file
    ├── b"ZIGJRNL1\\n"              9-byte magic header
    └── record*                     until EOF
          ├── uint32 BE             payload length
          ├── uint32 BE             CRC-32 of the payload bytes
          └── payload               compact UTF-8 JSON, one dict

Records are JSON (not pickle) so the journal stays inspectable with ten
lines of Python and never executes code on replay.  The CRC plus the
length prefix make torn tails detectable: a reader stops at the first
record that is short, corrupt, or mis-framed — everything before it is
trusted, everything after is counted and discarded.  That is the
correct crash semantics for an append-only log where the only writer
dies mid-``write``.

Segments **rotate** once the live one exceeds ``max_segment_bytes``
(bounding the unit of loss and the unit of fsync), and **compaction**
rewrites the journal from the live job table — dropping records of
pruned jobs and superseded states — into a fresh segment, deleting the
history it replaced.

Durability is a dial, not a promise (the matrix lives in
``docs/persistence.md``): every append is flushed to the OS (a SIGKILL
of the process loses nothing), and the ``fsync`` policy decides what a
*machine* crash can take: ``"never"`` (fastest), ``"rotate"`` (fsync at
segment boundaries and close — the default), or ``"always"`` (fsync
every record — group-commit territory, measurable overhead).
"""

from __future__ import annotations

import json
import os
import re
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import PersistenceError

#: Segment file header; bumping the format bumps the digit.
MAGIC = b"ZIGJRNL1\n"

#: ``(payload_length, payload_crc32)`` — the per-record frame.
_FRAME = struct.Struct(">II")

#: Segment file name pattern (zero-padded so lexical order == replay order).
_SEGMENT_RE = re.compile(r"^journal-(\d{8})\.log$")

#: Accepted ``fsync`` policies, in increasing durability/cost order.
FSYNC_POLICIES = ("never", "rotate", "always")

#: Default rotation threshold for one segment.
DEFAULT_SEGMENT_BYTES = 4 << 20  # 4 MiB


# ---------------------------------------------------------------------------
# Record constructors — the shared vocabulary of writer and replayer
# ---------------------------------------------------------------------------


def submit_record(job_id: str, payload: dict | None) -> dict:
    """A job entered the manager; ``payload`` is the wire request that
    created it (what a resume re-executes)."""
    return {"t": "submit", "job": job_id, "payload": payload or {}}


def state_record(job_id: str, status: str, *, result: Any = None,
                 error: dict | None = None,
                 timings: dict | None = None) -> dict:
    """A job changed state; terminal records carry the outcome."""
    record: dict = {"t": "state", "job": job_id, "status": status}
    if result is not None:
        record["result"] = result
    if error is not None:
        record["error"] = error
    if timings is not None:
        record["timings"] = timings
    return record


def event_record(job_id: str, seq: int, kind: str, data: Any) -> dict:
    """One numbered event of a job's event log."""
    return {"t": "event", "job": job_id, "seq": int(seq),
            "kind": kind, "data": data}


def prune_record(job_ids: Iterable[str]) -> dict:
    """The manager forgot these jobs; replay must too."""
    return {"t": "prune", "jobs": list(job_ids)}


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


@dataclass
class ReplayStats:
    """What a journal replay saw (surfaced by ``/v2/state``)."""

    segments: int = 0
    records: int = 0
    bytes: int = 0
    #: Torn/corrupt tail records skipped (CRC mismatch, short frame,
    #: undecodable payload).  Non-zero is expected after a hard crash.
    corrupt: int = 0

    def to_dict(self) -> dict:
        return {"segments": self.segments, "records": self.records,
                "bytes": self.bytes, "corrupt": self.corrupt}


def _read_segment(path: str, stats: ReplayStats) -> Iterator[dict]:
    """Yield the trustworthy records of one segment, stopping at the
    first sign of a torn tail."""
    with open(path, "rb") as fh:
        header = fh.read(len(MAGIC))
        if header != MAGIC:
            stats.corrupt += 1
            return
        while True:
            frame = fh.read(_FRAME.size)
            if not frame:
                return  # clean EOF
            if len(frame) < _FRAME.size:
                stats.corrupt += 1  # torn frame
                return
            length, crc = _FRAME.unpack(frame)
            payload = fh.read(length)
            if len(payload) < length:
                stats.corrupt += 1  # torn payload
                return
            if zlib.crc32(payload) != crc:
                stats.corrupt += 1  # bit rot / overwrite mid-record
                return
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                stats.corrupt += 1
                return
            if isinstance(record, dict):
                stats.records += 1
                stats.bytes += _FRAME.size + length
                yield record


# ---------------------------------------------------------------------------
# The journal
# ---------------------------------------------------------------------------


@dataclass
class JournalCounters:
    """Lifetime write-side counters (for ``/v2/state`` and the bench)."""

    appends: int = 0
    rotations: int = 0
    compactions: int = 0
    fsyncs: int = 0


class JobJournal:
    """Append-only, segmented, CRC-framed record log.

    One journal belongs to one coordinator process at a time; appends
    always go to a segment this process created (never a predecessor's),
    so replay order is segment order and a predecessor's torn tail can
    never interleave with fresh records.

    Args:
        root: directory for the segment files (created if missing).
        max_segment_bytes: rotation threshold for the live segment.
        fsync: one of :data:`FSYNC_POLICIES`.
    """

    def __init__(self, root: str,
                 max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 fsync: str = "rotate"):
        if fsync not in FSYNC_POLICIES:
            raise PersistenceError(
                f"unknown fsync policy {fsync!r} "
                f"(available: {', '.join(FSYNC_POLICIES)})")
        self.root = root
        self.max_segment_bytes = max(4096, int(max_segment_bytes))
        self.fsync = fsync
        self.counters = JournalCounters()
        self._lock = threading.Lock()
        self._closed = False
        os.makedirs(root, exist_ok=True)
        # A crash between a compaction's temp write and its os.replace
        # leaves an orphaned *.tmp behind; one directory belongs to one
        # coordinator, so anything here at open time is dead weight.
        for name in os.listdir(root):
            if name.endswith(".tmp"):
                try:
                    os.remove(os.path.join(root, name))
                except OSError:
                    pass
        existing = self._segment_numbers()
        #: Segments left by previous runs.  Non-zero means there is
        #: journaled history a recovery pass has not replayed yet —
        #: compacting against the live job table before that replay
        #: would delete it (see ``DurableState.maybe_compact``).
        self.preexisting_segments = len(existing)
        #: Running on-disk size of every segment, maintained at each
        #: mutation so hot callers (``/healthz``, the compaction
        #: trigger) never walk the directory.
        self._disk_bytes = 0
        for number in existing:
            try:
                self._disk_bytes += os.path.getsize(
                    self._segment_path(number))
            except OSError:
                pass
        self._current_no = (existing[-1] + 1) if existing else 1
        self._segments = len(existing) + 1
        self._fh = self._open_segment(self._current_no)
        self._current_bytes = len(MAGIC)
        self._disk_bytes += len(MAGIC)

    # -- segment plumbing --------------------------------------------------------

    def _segment_numbers(self) -> list[int]:
        numbers = []
        for name in os.listdir(self.root):
            match = _SEGMENT_RE.match(name)
            if match:
                numbers.append(int(match.group(1)))
        return sorted(numbers)

    def _segment_path(self, number: int) -> str:
        return os.path.join(self.root, f"journal-{number:08d}.log")

    def _open_segment(self, number: int):
        fh = open(self._segment_path(number), "ab")
        if fh.tell() == 0:
            fh.write(MAGIC)
            fh.flush()
        return fh

    def _sync_locked(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.counters.fsyncs += 1

    def _rotate_locked(self) -> None:
        if self.fsync in ("rotate", "always"):
            self._sync_locked()
        self._fh.close()
        self._current_no += 1
        self._fh = self._open_segment(self._current_no)
        self._current_bytes = len(MAGIC)
        self._disk_bytes += len(MAGIC)
        self._segments += 1
        self.counters.rotations += 1

    # -- writing -----------------------------------------------------------------

    @staticmethod
    def _frame(record: dict) -> bytes:
        payload = json.dumps(record, separators=(",", ":"),
                             ensure_ascii=False).encode("utf-8")
        return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload

    def append(self, record: dict) -> None:
        """Write one record; flushed to the OS before returning (a
        process kill after ``append`` never loses the record)."""
        frame = self._frame(record)
        with self._lock:
            if self._closed:
                return  # late events during shutdown are best-effort
            if self._current_bytes + len(frame) > self.max_segment_bytes \
                    and self._current_bytes > len(MAGIC):
                self._rotate_locked()
            self._fh.write(frame)
            self._fh.flush()
            self._current_bytes += len(frame)
            self._disk_bytes += len(frame)
            self.counters.appends += 1
            if self.fsync == "always":
                self._sync_locked()

    def flush(self, sync: bool = False) -> None:
        """Push buffered bytes to the OS (and to the device with
        ``sync=True``) — what a clean drain calls before the executor
        backend closes."""
        with self._lock:
            if self._closed:
                return
            self._fh.flush()
            if sync:
                self._sync_locked()

    # -- replay ------------------------------------------------------------------

    def replay(self) -> tuple[list[dict], ReplayStats]:
        """Every trustworthy record, oldest first, plus what was skipped.

        Safe to call on a live journal (reads the already-flushed
        prefix); recovery calls it before any append of the new run.
        """
        stats = ReplayStats()
        records: list[dict] = []
        with self._lock:
            if not self._closed:
                self._fh.flush()
            numbers = self._segment_numbers()
        for number in numbers:
            stats.segments += 1
            records.extend(_read_segment(self._segment_path(number), stats))
        return records, stats

    # -- compaction --------------------------------------------------------------

    def compact(self, live_records: Iterable[dict]) -> int:
        """Rewrite the journal as exactly ``live_records``.

        The records are written to a brand-new segment (via a temp file
        renamed into place, so a crash mid-compaction leaves the old
        segments untouched), then every older segment is deleted.
        Returns the number of records written.
        """
        frames = [self._frame(record) for record in live_records]
        with self._lock:
            if self._closed:
                return 0
            self._sync_locked()
            self._fh.close()
            old_numbers = self._segment_numbers()
            new_no = (old_numbers[-1] + 1) if old_numbers else 1
            tmp_path = self._segment_path(new_no) + ".tmp"
            with open(tmp_path, "wb") as fh:
                fh.write(MAGIC)
                for frame in frames:
                    fh.write(frame)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_path, self._segment_path(new_no))
            for number in old_numbers:
                try:
                    os.remove(self._segment_path(number))
                except OSError:
                    pass  # a reader may hold it open; replay tolerates
            # Appends resume on a fresh segment *after* the compacted one.
            self._current_no = new_no + 1
            self._fh = self._open_segment(self._current_no)
            self._current_bytes = len(MAGIC)
            self._disk_bytes = (len(MAGIC) * 2
                                + sum(len(frame) for frame in frames))
            self._segments = 2  # the compacted segment + the fresh current
            self.counters.compactions += 1
        return len(frames)

    # -- introspection / lifecycle ----------------------------------------------

    def total_bytes(self) -> int:
        """On-disk size of every segment (compaction trigger input).

        A running counter maintained at every append/rotation/
        compaction — health probes hit this, so it must not walk the
        directory.
        """
        with self._lock:
            return self._disk_bytes

    def stats(self) -> dict:
        """JSON-able write-side state for ``/v2/state`` / ``/healthz``.

        Counter-based (no filesystem walks — health probes hit this):
        segment count and sizes are running counters maintained at
        every append, rotation and compaction.
        """
        with self._lock:
            return {
                "segments": self._segments,
                "current_segment": self._current_no,
                "bytes": self._disk_bytes,
                "appends": self.counters.appends,
                "rotations": self.counters.rotations,
                "compactions": self.counters.compactions,
                "fsyncs": self.counters.fsyncs,
                "fsync_policy": self.fsync,
                "max_segment_bytes": self.max_segment_bytes,
            }

    def close(self) -> None:
        """Flush, fsync (unless policy ``never``), and close (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._fh.flush()
            if self.fsync in ("rotate", "always"):
                try:
                    self._sync_locked()
                except OSError:
                    pass
            self._fh.close()
            self._closed = True


# ---------------------------------------------------------------------------
# Replay folding — records -> per-job state
# ---------------------------------------------------------------------------


@dataclass
class JournaledJob:
    """The folded journal state of one job (what recovery consumes)."""

    job_id: str
    payload: dict = field(default_factory=dict)
    status: str = "pending"
    events: list = field(default_factory=list)  # (seq, kind, data)
    result: Any = None
    error: dict | None = None
    timings: dict | None = None

    @property
    def finished(self) -> bool:
        return self.status in ("done", "failed", "cancelled", "interrupted")

    @property
    def number(self) -> int:
        """The numeric suffix of ``job-NNNNNN`` ids (0 when foreign)."""
        _, _, digits = self.job_id.rpartition("-")
        return int(digits) if digits.isdigit() else 0


def fold_records(records: Iterable[dict]) -> "dict[str, JournaledJob]":
    """Collapse a replayed record stream into per-job final state.

    Later records win; ``prune`` records delete.  Unknown record types
    and records for never-submitted jobs are tolerated (an ``event``
    before its ``submit`` creates the entry), so a journal written by a
    slightly newer revision still replays.  Events are deduplicated by
    sequence number (later wins) — a compaction can legitimately write
    an event that an in-flight append then re-records in the fresh
    segment, and a restored log must stay contiguous regardless.
    """
    jobs: dict[str, JournaledJob] = {}
    events: dict[str, dict[int, tuple]] = {}

    def entry(job_id: str) -> JournaledJob:
        job = jobs.get(job_id)
        if job is None:
            job = jobs[job_id] = JournaledJob(job_id=job_id)
            events[job_id] = {}
        return job

    for record in records:
        kind = record.get("t")
        if kind == "submit":
            job = entry(str(record.get("job", "")))
            job.payload = dict(record.get("payload") or {})
        elif kind == "state":
            job = entry(str(record.get("job", "")))
            job.status = str(record.get("status", job.status))
            if record.get("result") is not None:
                job.result = record["result"]
            if record.get("error") is not None:
                job.error = dict(record["error"])
            if record.get("timings") is not None:
                job.timings = dict(record["timings"])
        elif kind == "event":
            job = entry(str(record.get("job", "")))
            seq = int(record.get("seq", 0) or 0)
            events[job.job_id][seq] = (seq, str(record.get("kind", "")),
                                       record.get("data"))
        elif kind == "prune":
            for job_id in record.get("jobs") or ():
                jobs.pop(str(job_id), None)
                events.pop(str(job_id), None)
    jobs.pop("", None)
    for job_id, job in jobs.items():
        job.events = [events[job_id][seq] for seq in sorted(events[job_id])]
    return jobs
