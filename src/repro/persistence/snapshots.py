"""The warm-cache snapshot store — prepared statistics that survive.

The paper's "few seconds on large tables" promise rests on preparation
being paid once per table; the runtime's
:class:`~repro.runtime.SharedStatsRegistry` already stretches that
guarantee across clients, and this store stretches it across *process
lifetimes*: :meth:`~repro.core.stats_cache.StatsCache.snapshot` blobs
are written per table **fingerprint** on a background cadence (and on
clean drain), and a restarting coordinator merges them back into the
registry — and ships them to worker shards — through the same
``merge_from`` warm-handoff path the self-healing executor uses for
respawns.  A snapshot on disk is therefore also the respawn path's
disk-backed fallback: registrations replayed into a replacement worker
start from the restored entries instead of an empty cache.

Trust is earned by content addressing: blobs are keyed by the table's
content fingerprint, and a load verifies (a) the frame CRC and (b) that
the fingerprint *inside* the blob matches the one asked for.  A table
whose content changed gets a different fingerprint and simply misses —
stale statistics can never be attributed to new data.

File format (one blob per fingerprint, ``snap-<fingerprint>.bin``)::

    b"ZIGSNAP1\\n"    magic
    uint32 BE        payload length
    uint32 BE        CRC-32 of the payload
    payload          pickle of {"fingerprint", "table", "entries",
                                "saved_at", "cache": StatsCache}

Pickle is acceptable here — unlike the journal, snapshots are pure
derived state: a corrupt or untrusted blob is *dropped* (the cache
rebuilds from the table), never required for correctness.  Writes are
atomic (temp file + ``os.replace``), so readers see old-or-new, never
torn.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import time
import zlib
from dataclasses import dataclass

from repro.core.stats_cache import StatsCache

#: Snapshot blob header.
MAGIC = b"ZIGSNAP1\n"

_FRAME = struct.Struct(">II")

_PREFIX, _SUFFIX = "snap-", ".bin"


@dataclass
class SnapshotCounters:
    """Lifetime store counters (for ``/v2/state``)."""

    saved: int = 0
    skipped_unchanged: int = 0
    loaded: int = 0
    misses: int = 0
    corrupt: int = 0


class SnapshotStore:
    """Atomic per-fingerprint :class:`StatsCache` blobs on disk.

    Args:
        root: directory for the blobs (created if missing).
    """

    def __init__(self, root: str):
        self.root = root
        self.counters = SnapshotCounters()
        self._lock = threading.Lock()
        #: :meth:`StatsCache.entry_signature` at the last save per
        #: fingerprint — the cheap change detector that keeps the
        #: background cadence from rewriting identical blobs every tick
        #: while still catching entries replaced without the count
        #: moving.
        self._saved_signatures: dict[str, int] = {}
        os.makedirs(root, exist_ok=True)
        # Writers that crashed between their temp write and os.replace
        # leave .tmp-<pid>-<tid> files behind; nothing will ever rename
        # them, so drop them here (one store per directory at a time).
        for name in os.listdir(root):
            if f"{_SUFFIX}.tmp-" in name:
                try:
                    os.remove(os.path.join(root, name))
                except OSError:
                    pass
        #: On-disk bytes per blob, scanned once here and maintained on
        #: every save — ``stats()`` sits on the health-probe path and
        #: must not walk the directory per request.
        self._blob_bytes: dict[str, int] = {}
        for fingerprint in self.fingerprints():
            try:
                self._blob_bytes[fingerprint] = os.path.getsize(
                    self._path(fingerprint))
            except OSError:
                pass

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.root, f"{_PREFIX}{fingerprint}{_SUFFIX}")

    # -- writing -----------------------------------------------------------------

    def save(self, fingerprint: str, cache: StatsCache,
             table_name: str = "", force: bool = False) -> bool:
        """Snapshot one cache to disk; returns whether a blob was written.

        Empty caches and caches unchanged since the last save are
        skipped (``force=True`` overrides the change detector, not the
        empty check — there is nothing to warm from an empty cache).
        """
        # Signature first, on the live cache: the unchanged check must
        # not cost a full deep copy per daemon tick.  Entries landing
        # between this read and the snapshot below are simply picked up
        # by the next pass (the stored baseline is this signature).
        signature = cache.entry_signature()
        with self._lock:
            if not force \
                    and self._saved_signatures.get(fingerprint) == signature:
                self.counters.skipped_unchanged += 1
                return False
        snapshot = cache.snapshot()
        entries = snapshot.size
        if entries == 0:
            return False
        payload = pickle.dumps({
            "fingerprint": fingerprint,
            "table": table_name,
            "entries": entries,
            "saved_at": time.time(),
            "cache": snapshot,
        }, protocol=pickle.HIGHEST_PROTOCOL)
        blob = MAGIC + _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        path = self._path(fingerprint)
        # Pid *and* thread id: the snapshot daemon and a drain-time pass
        # can save the same fingerprint concurrently, and two writers
        # sharing one temp path would interleave into a corrupt blob.
        tmp_path = f"{path}.tmp-{os.getpid()}-{threading.get_ident()}"
        with open(tmp_path, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
        with self._lock:
            self._saved_signatures[fingerprint] = signature
            self._blob_bytes[fingerprint] = len(blob)
            self.counters.saved += 1
        return True

    # -- reading -----------------------------------------------------------------

    def _read(self, fingerprint: str) -> dict | None:
        try:
            with open(self._path(fingerprint), "rb") as fh:
                blob = fh.read()
        except OSError:
            return None
        if not blob.startswith(MAGIC):
            return None
        framed = blob[len(MAGIC):]
        if len(framed) < _FRAME.size:
            return None
        length, crc = _FRAME.unpack(framed[:_FRAME.size])
        payload = framed[_FRAME.size:_FRAME.size + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            return None
        try:
            meta = pickle.loads(payload)
        except Exception:  # noqa: BLE001 - any unpickling fault means "no blob"
            return None
        if not isinstance(meta, dict) \
                or not isinstance(meta.get("cache"), StatsCache):
            return None
        return meta

    def load(self, fingerprint: str) -> StatsCache | None:
        """The stored cache for one fingerprint, or None.

        None means "cold start" — missing blob, corrupt frame, or a blob
        whose embedded fingerprint disagrees with the file name (both
        are counted separately so ``/v2/state`` can tell rot from cold).
        """
        meta = self._read(fingerprint)
        if meta is None:
            with self._lock:
                if os.path.exists(self._path(fingerprint)):
                    self.counters.corrupt += 1
                else:
                    self.counters.misses += 1
            return None
        if meta.get("fingerprint") != fingerprint:
            with self._lock:
                self.counters.corrupt += 1
            return None
        restored = meta["cache"]
        baseline = restored.entry_signature()
        with self._lock:
            self.counters.loaded += 1
            # A later save must see the restored entries as the baseline
            # (a cache that only re-absorbed this blob needs no rewrite).
            self._saved_signatures.setdefault(fingerprint, baseline)
        return restored

    def load_for_table(self, table) -> StatsCache | None:
        """Fingerprint-verified load for a live table object."""
        return self.load(table.fingerprint())

    # -- introspection -----------------------------------------------------------

    def fingerprints(self) -> tuple[str, ...]:
        """Fingerprints with a blob on disk."""
        names = []
        try:
            for name in os.listdir(self.root):
                if name.startswith(_PREFIX) and name.endswith(_SUFFIX):
                    names.append(name[len(_PREFIX):-len(_SUFFIX)])
        except OSError:
            pass
        return tuple(sorted(names))

    def describe(self) -> list[dict]:
        """Per-blob metadata (without unpickling caches into memory twice
        this would be free; it is still cheap — blobs are moments, not
        rows)."""
        entries = []
        for fingerprint in self.fingerprints():
            meta = self._read(fingerprint)
            if meta is None:
                entries.append({"fingerprint": fingerprint, "corrupt": True})
                continue
            entries.append({
                "fingerprint": fingerprint,
                "table": meta.get("table", ""),
                "entries": int(meta.get("entries", 0)),
                "saved_at": float(meta.get("saved_at", 0.0)),
            })
        return entries

    def stats(self) -> dict:
        """JSON-able store state for ``/v2/state`` / ``/healthz``.

        Served from the maintained size map — no directory walk on the
        probe path.
        """
        with self._lock:
            return {
                "count": len(self._blob_bytes),
                "bytes": sum(self._blob_bytes.values()),
                "saved": self.counters.saved,
                "skipped_unchanged": self.counters.skipped_unchanged,
                "loaded": self.counters.loaded,
                "misses": self.counters.misses,
                "corrupt": self.counters.corrupt,
            }
