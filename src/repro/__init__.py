"""repro — a reproduction of *Ziggy: Characterizing Query Results for
Data Explorers* (Sellam & Kersten, VLDB 2016).

Ziggy helps data explorers understand their query results: given a
selection over a wide table, it detects **characteristic views** — small
sets of columns on which the selected tuples differ most from the rest of
the database — scores them with the composite, explainable
**Zig-Dissimilarity**, checks their statistical robustness, and
verbalizes why each view was chosen.

Quickstart (library)::

    from repro import Ziggy, load_dataset

    table = load_dataset("us_crime")
    ziggy = Ziggy(table)
    result = ziggy.characterize("violent_crime_rate > 0.25")
    print(result.describe())
    for view in result.views:
        print(view.explanation)

    # Batches share statistics across predicates (one table scan):
    results = ziggy.characterize_many(["violent_crime_rate > 0.25",
                                       "pct_unemployed > 0.3"])

Quickstart (service) — the paper's engine-plus-web-server architecture,
speaking the typed protocol v2 (see ``docs/api_v2.md``)::

    from repro import ZiggyService, CharacterizeRequest, load_dataset

    service = ZiggyService()
    service.register_table(load_dataset("us_crime"))
    response = service.characterize(
        CharacterizeRequest(where="violent_crime_rate > 0.25"))
    for view in response.views.items:
        print(view["explanation"])

    # Long searches run as cancellable jobs with progressive results:
    job = service.submit(CharacterizeRequest(where="pct_unemployed > 0.3"))
    snapshot = service.wait(job.job_id)

Run the HTTP server with ``python -m repro serve --dataset us_crime`` and
talk to it with :class:`repro.service.client.ZiggyClient`.
"""

from repro.core.config import ZiggyConfig
from repro.core.events import StageEvent
from repro.core.pipeline import CharacterizationPlan, Ziggy
from repro.core.views import (
    CharacterizationResult,
    ComponentScore,
    View,
    ViewResult,
)
from repro.persistence import DurableState
from repro.runtime import ZiggyRuntime, get_runtime
from repro.data.registry import dataset_names, load_dataset
from repro.engine.csvio import read_csv, write_csv
from repro.engine.database import Database, Selection, selection_from_mask
from repro.engine.table import Table
from repro.errors import ReproError, ServiceError
from repro.service import (
    PROTOCOL_VERSION,
    ApiError,
    BatchRequest,
    CharacterizeRequest,
    ZiggyService,
)

__version__ = "2.0.0"

__all__ = [
    "Ziggy",
    "ZiggyConfig",
    "ZiggyRuntime",
    "get_runtime",
    "CharacterizationPlan",
    "StageEvent",
    "View",
    "ViewResult",
    "ComponentScore",
    "CharacterizationResult",
    "Table",
    "Database",
    "Selection",
    "selection_from_mask",
    "read_csv",
    "write_csv",
    "load_dataset",
    "dataset_names",
    "ReproError",
    "ServiceError",
    "ZiggyService",
    "DurableState",
    "CharacterizeRequest",
    "BatchRequest",
    "ApiError",
    "PROTOCOL_VERSION",
    "__version__",
]
