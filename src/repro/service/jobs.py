"""Asynchronous job execution for long-running characterizations.

A :class:`JobManager` runs submitted work on a thread pool and tracks a
small, observable lifecycle per job::

    pending -> running -> done | failed | cancelled
       \\______________________________/
              cancel() at any point

Cancellation is cooperative: the work function receives a ``progress``
callback and must call it between units of work (the pipeline already
does, once per stage and once per ranked view); when the job has been
cancelled, the next ``progress`` call raises :class:`JobCancelled`, which
the runner converts into the ``cancelled`` state.  A job that is still
``pending`` when cancelled never starts.

Progress events with stage ``"view"`` are captured as the job's partial
results, so pollers can render views while the search is still running.

Every progress event is additionally recorded in the job's **event log**
(a monotonically numbered ``(seq, stage, payload)`` list) and announced
on a condition variable, so streaming consumers — the service's
``/v2/jobs/<id>/events`` endpoint — can block in :meth:`events_since`
and relay events as they happen instead of polling snapshots.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import JobCancelled, JobNotFoundError

#: Valid job states.
JOB_STATES = ("pending", "running", "done", "failed", "cancelled")

#: States from which a job can never move again.
TERMINAL_STATES = ("done", "failed", "cancelled")

ProgressFn = Callable[[str, Any], None]
WorkFn = Callable[[ProgressFn], Any]


@dataclass
class Job:
    """The manager's mutable record of one submitted job.

    Consumers should not hold onto this object across threads; use
    :meth:`JobManager.status` (which locks) or the service layer's
    immutable snapshots instead.
    """

    job_id: str
    status: str = "pending"
    submitted_at: float = field(default_factory=time.perf_counter)
    started_at: float | None = None
    finished_at: float | None = None
    result: Any = None
    error: BaseException | None = None
    partial: list = field(default_factory=list)
    events: list = field(default_factory=list, repr=False)
    cancel_event: threading.Event = field(default_factory=threading.Event)
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self):
        # Shares the job lock, so event appends and state transitions
        # wake streaming waiters atomically.
        self.event_cond = threading.Condition(self.lock)

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.status in TERMINAL_STATES

    def record_event(self, stage: str, payload: Any,
                     mapper: "Callable[[int, str, Any], Any] | None" = None
                     ) -> None:
        """Append one numbered event and wake streaming consumers.

        ``mapper(seq, stage, payload)`` transforms the payload before it
        is stored — the service passes its wire serializer here, so the
        event log holds small JSON-able summaries instead of raw pipeline
        artifacts (which would pin per-query slices and tables for the
        job's whole lifetime).  Must be called *without* the job lock
        held.
        """
        with self.event_cond:
            seq = len(self.events) + 1
            item = payload if mapper is None else mapper(seq, stage, payload)
            self.events.append((seq, stage, item))
            self.event_cond.notify_all()

    def timings_ms(self) -> dict[str, float]:
        """Queue and run durations so far, in milliseconds."""
        now = time.perf_counter()
        timings: dict[str, float] = {}
        started = self.started_at
        timings["queued"] = ((started if started is not None else now)
                             - self.submitted_at) * 1000.0
        if started is not None:
            end = self.finished_at if self.finished_at is not None else now
            timings["run"] = (end - started) * 1000.0
        return timings


class JobManager:
    """Runs work functions on a bounded thread pool with job tracking.

    Args:
        max_workers: pool size; excess jobs queue in ``pending`` state.
        name: thread-name prefix (shows up in debuggers and logs).
    """

    def __init__(self, max_workers: int = 2, name: str = "ziggy-job"):
        self._executor = ThreadPoolExecutor(max_workers=max_workers,
                                            thread_name_prefix=name)
        self._jobs: dict[str, Job] = {}
        self._futures: dict[str, Future] = {}
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------

    def submit(self, work: WorkFn,
               on_progress: ProgressFn | None = None,
               event_mapper: Callable[[int, str, Any], Any] | None = None
               ) -> str:
        """Queue ``work`` and return its job ID.

        ``work`` is called with a progress function it must invoke between
        units of work; ``on_progress`` additionally forwards every event
        to the caller (e.g. a streaming HTTP response).  ``event_mapper``
        transforms payloads before they enter the job's event log (see
        :meth:`Job.record_event`).
        """
        with self._lock:
            job_id = f"job-{next(self._counter):06d}"
            job = Job(job_id=job_id)
            self._jobs[job_id] = job
        future = self._executor.submit(self._run, job, work, on_progress,
                                       event_mapper)
        with self._lock:
            self._futures[job_id] = future
        return job_id

    def _run(self, job: Job, work: WorkFn,
             on_progress: ProgressFn | None,
             event_mapper: Callable[[int, str, Any], Any] | None = None
             ) -> None:
        with job.event_cond:
            if job.cancel_event.is_set():
                job.status = "cancelled"
                job.finished_at = time.perf_counter()
                job.event_cond.notify_all()
                return
            job.status = "running"
            job.started_at = time.perf_counter()

        def progress(stage: str, payload: Any) -> None:
            if job.cancel_event.is_set():
                raise JobCancelled(job.job_id)
            if stage == "view":
                with job.lock:
                    job.partial.append(payload)
                    rank = len(job.partial)
                # Record the keep-order rank with the view, so event
                # consumers never rescan the log to reconstruct it.
                job.record_event(stage, (rank, payload), event_mapper)
            else:
                job.record_event(stage, payload, event_mapper)
            if on_progress is not None:
                on_progress(stage, payload)
            # Re-check after the caller's hook: a cancel that arrived while
            # the hook ran (or blocked) must not be lost until the next event.
            if job.cancel_event.is_set():
                raise JobCancelled(job.job_id)

        try:
            result = work(progress)
        except JobCancelled:
            with job.event_cond:
                job.status = "cancelled"
                job.finished_at = time.perf_counter()
                job.event_cond.notify_all()
        except BaseException as exc:  # noqa: BLE001 - reported via status
            with job.event_cond:
                job.status = "failed"
                job.error = exc
                job.finished_at = time.perf_counter()
                job.event_cond.notify_all()
        else:
            with job.event_cond:
                # A cancel that lands after the last progress event loses
                # the race: the work completed, so report the result.
                job.status = "done"
                job.result = result
                job.finished_at = time.perf_counter()
                job.event_cond.notify_all()

    # -- observation -------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """The live job record (raises :class:`JobNotFoundError`)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(job_id)
        return job

    def job_ids(self) -> tuple[str, ...]:
        """All known job IDs, oldest first."""
        with self._lock:
            return tuple(self._jobs)

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; returns the job record.

        A ``pending`` job is cancelled immediately (its future never
        runs); a ``running`` job stops at its next progress event; a
        finished job is left untouched.
        """
        job = self.get(job_id)
        job.cancel_event.set()
        with self._lock:
            future = self._futures.get(job_id)
        if future is not None and future.cancel():
            with job.event_cond:
                if not job.finished:
                    job.status = "cancelled"
                    job.finished_at = time.perf_counter()
                job.event_cond.notify_all()
        return job

    def events_since(self, job_id: str, after_seq: int = 0,
                     timeout: float | None = None
                     ) -> tuple[list[tuple[int, str, Any]], bool]:
        """Events with ``seq > after_seq``, blocking until some arrive.

        Returns ``(events, finished)``.  Blocks for at most ``timeout``
        seconds (None = until an event arrives or the job finishes); an
        empty list with ``finished=False`` means the wait timed out —
        streamers use that as their keep-alive tick.
        """
        job = self.get(job_id)
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        with job.event_cond:
            while True:
                # Sequence numbers are contiguous (seq == index + 1), so
                # the unseen tail is a slice, not a scan.
                fresh = job.events[after_seq:]
                if fresh or job.finished:
                    return fresh, job.finished
                if deadline is None:
                    job.event_cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not job.event_cond.wait(remaining):
                    return job.events[after_seq:], job.finished

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state (or timeout)."""
        job = self.get(job_id)
        with self._lock:
            future = self._futures.get(job_id)
        if future is not None:
            try:
                future.result(timeout=timeout)
            except (CancelledError, Exception):  # noqa: B014 - CancelledError
                pass  # is a BaseException; outcomes surface via job.status
        return job

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for running jobs."""
        self._executor.shutdown(wait=wait, cancel_futures=True)
