"""Asynchronous job execution for long-running characterizations.

A :class:`JobManager` runs submitted work on a thread pool and tracks a
small, observable lifecycle per job::

    pending -> running -> done | failed | cancelled
       \\______________________________/
              cancel() at any point

Cancellation is cooperative: the work function receives a ``progress``
callback and must call it between units of work (the pipeline already
does, once per stage and once per ranked view); when the job has been
cancelled, the next ``progress`` call raises :class:`JobCancelled`, which
the runner converts into the ``cancelled`` state.  A job that is still
``pending`` when cancelled never starts.

Progress events with stage ``"view"`` are captured as the job's partial
results, so pollers can render views while the search is still running.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import JobCancelled, JobNotFoundError

#: Valid job states.
JOB_STATES = ("pending", "running", "done", "failed", "cancelled")

#: States from which a job can never move again.
TERMINAL_STATES = ("done", "failed", "cancelled")

ProgressFn = Callable[[str, Any], None]
WorkFn = Callable[[ProgressFn], Any]


@dataclass
class Job:
    """The manager's mutable record of one submitted job.

    Consumers should not hold onto this object across threads; use
    :meth:`JobManager.status` (which locks) or the service layer's
    immutable snapshots instead.
    """

    job_id: str
    status: str = "pending"
    submitted_at: float = field(default_factory=time.perf_counter)
    started_at: float | None = None
    finished_at: float | None = None
    result: Any = None
    error: BaseException | None = None
    partial: list = field(default_factory=list)
    cancel_event: threading.Event = field(default_factory=threading.Event)
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.status in TERMINAL_STATES

    def timings_ms(self) -> dict[str, float]:
        """Queue and run durations so far, in milliseconds."""
        now = time.perf_counter()
        timings: dict[str, float] = {}
        started = self.started_at
        timings["queued"] = ((started if started is not None else now)
                             - self.submitted_at) * 1000.0
        if started is not None:
            end = self.finished_at if self.finished_at is not None else now
            timings["run"] = (end - started) * 1000.0
        return timings


class JobManager:
    """Runs work functions on a bounded thread pool with job tracking.

    Args:
        max_workers: pool size; excess jobs queue in ``pending`` state.
        name: thread-name prefix (shows up in debuggers and logs).
    """

    def __init__(self, max_workers: int = 2, name: str = "ziggy-job"):
        self._executor = ThreadPoolExecutor(max_workers=max_workers,
                                            thread_name_prefix=name)
        self._jobs: dict[str, Job] = {}
        self._futures: dict[str, Future] = {}
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------

    def submit(self, work: WorkFn,
               on_progress: ProgressFn | None = None) -> str:
        """Queue ``work`` and return its job ID.

        ``work`` is called with a progress function it must invoke between
        units of work; ``on_progress`` additionally forwards every event
        to the caller (e.g. a streaming HTTP response).
        """
        with self._lock:
            job_id = f"job-{next(self._counter):06d}"
            job = Job(job_id=job_id)
            self._jobs[job_id] = job
        future = self._executor.submit(self._run, job, work, on_progress)
        with self._lock:
            self._futures[job_id] = future
        return job_id

    def _run(self, job: Job, work: WorkFn,
             on_progress: ProgressFn | None) -> None:
        with job.lock:
            if job.cancel_event.is_set():
                job.status = "cancelled"
                job.finished_at = time.perf_counter()
                return
            job.status = "running"
            job.started_at = time.perf_counter()

        def progress(stage: str, payload: Any) -> None:
            if job.cancel_event.is_set():
                raise JobCancelled(job.job_id)
            if stage == "view":
                with job.lock:
                    job.partial.append(payload)
            if on_progress is not None:
                on_progress(stage, payload)
            # Re-check after the caller's hook: a cancel that arrived while
            # the hook ran (or blocked) must not be lost until the next event.
            if job.cancel_event.is_set():
                raise JobCancelled(job.job_id)

        try:
            result = work(progress)
        except JobCancelled:
            with job.lock:
                job.status = "cancelled"
                job.finished_at = time.perf_counter()
        except BaseException as exc:  # noqa: BLE001 - reported via status
            with job.lock:
                job.status = "failed"
                job.error = exc
                job.finished_at = time.perf_counter()
        else:
            with job.lock:
                # A cancel that lands after the last progress event loses
                # the race: the work completed, so report the result.
                job.status = "done"
                job.result = result
                job.finished_at = time.perf_counter()

    # -- observation -------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """The live job record (raises :class:`JobNotFoundError`)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(job_id)
        return job

    def job_ids(self) -> tuple[str, ...]:
        """All known job IDs, oldest first."""
        with self._lock:
            return tuple(self._jobs)

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; returns the job record.

        A ``pending`` job is cancelled immediately (its future never
        runs); a ``running`` job stops at its next progress event; a
        finished job is left untouched.
        """
        job = self.get(job_id)
        job.cancel_event.set()
        with self._lock:
            future = self._futures.get(job_id)
        if future is not None and future.cancel():
            with job.lock:
                if not job.finished:
                    job.status = "cancelled"
                    job.finished_at = time.perf_counter()
        return job

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state (or timeout)."""
        job = self.get(job_id)
        with self._lock:
            future = self._futures.get(job_id)
        if future is not None:
            try:
                future.result(timeout=timeout)
            except (CancelledError, Exception):  # noqa: B014 - CancelledError
                pass  # is a BaseException; outcomes surface via job.status
        return job

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for running jobs."""
        self._executor.shutdown(wait=wait, cancel_futures=True)
