"""Asynchronous job execution for long-running characterizations.

A :class:`JobManager` tracks a small, observable lifecycle per job::

    pending -> running -> done | failed | cancelled
       \\______________________________/
              cancel() at any point

but no longer runs anything itself: execution is delegated to a
pluggable :class:`~repro.runtime.executors.Executor` backend — inline
(synchronous), thread pool (the default, the pre-refactor behaviour) or
a pool of worker processes sharded by table fingerprint.  The manager
owns the lifecycle bookkeeping; the backend owns the where and how.

Work arrives either as an in-process callable ``work(progress)`` or as
a serializable :class:`~repro.runtime.executors.CharacterizationTask`
(the only form a process backend accepts).  Either way the progress
stream is identical: cancellation is cooperative — when a job has been
cancelled, the next ``progress`` call raises :class:`JobCancelled`, and
the backend aborts the work at that stage boundary (local backends
immediately, process shards at the worker's next event).  A job that is
still ``pending`` when cancelled never starts.

Progress events with stage ``"view"`` are captured as the job's partial
results, so pollers can render views while the search is still running.
A ``"worker-restart"`` event (emitted by the self-healing process
backend when a job's worker died and the task was re-enqueued) resets
the partial capture: the retry re-streams its views from rank one.
Every progress event is additionally recorded in the job's **event log**
(a monotonically numbered ``(seq, stage, payload)`` list) and announced
on a condition variable, so streaming consumers — the service's
``/v2/jobs/<id>/events`` endpoint — can block in :meth:`events_since`
and relay events as they happen instead of polling snapshots.

Retention is bounded: terminal jobs beyond ``max_finished`` (or older
than ``finished_ttl`` seconds) are pruned on submission, and a pruned
job behaves exactly like an unknown one — :class:`JobNotFoundError`,
including for :meth:`events_since` waiters that were already blocked on
it when the prune happened (they are woken and raised, never left
waiting forever).

With a **journal** attached (see :mod:`repro.persistence`), every
lifecycle step is additionally appended to disk — submission (with the
wire payload a resume re-executes), the ``running`` transition, every
event-log entry, the terminal outcome, and prunes — so a coordinator
restart can :meth:`adopt` jobs back exactly as they were.  Restored
event logs keep their journaled sequence numbers, and fresh events
append after them, so ``events_since`` cursors stay monotonic *across*
restarts.  The ``interrupted`` state is terminal and restart-specific:
a job that was in flight when the coordinator stopped and was not
resumed.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import JobCancelled, JobNotFoundError
from repro.persistence.journal import (
    event_record,
    prune_record,
    state_record,
    submit_record,
)
from repro.runtime.executors import (
    CharacterizationTask,
    ExecutionHandle,
    Executor,
    ExecutorError,
    ThreadExecutor,
)

#: Valid job states.
JOB_STATES = ("pending", "running", "done", "failed", "cancelled",
              "interrupted")

#: States from which a job can never move again.
TERMINAL_STATES = ("done", "failed", "cancelled", "interrupted")

ProgressFn = Callable[[str, Any], None]
WorkFn = Callable[[ProgressFn], Any]

#: Default retention: how many terminal jobs stay queryable.
DEFAULT_MAX_FINISHED = 256

#: Longest stretch a blocked ``events_since`` waits before re-checking
#: that its job still exists (pruning wakes waiters explicitly; this is
#: the belt to that suspender).
_WAIT_SLICE_SECONDS = 1.0


def _wire_event(stage: str, item: Any) -> "tuple[str, Any]":
    """A stored event-log item as ``(kind, JSON-able data)``.

    Service jobs store typed wire events (``kind``/``data`` attributes)
    whose data is JSON-able by construction — those pass through
    untouched (re-walking every view payload would double the journal's
    serialization bill).  Raw submissions store arbitrary payloads,
    which journal as their JSON-safe projection; anything that still
    slips through lands on the append's stripped-down fallback record.
    """
    kind = getattr(item, "kind", None)
    data = getattr(item, "data", None)
    if kind is not None and data is not None:
        return kind, data
    from repro.service.protocol import json_safe

    return kind or stage, json_safe(data if data is not None else item)


def _wire_result(result: Any) -> Any:
    """A job result as its JSON-able journal form (None when it has no
    wire shape — the status still journals, the blob is dropped)."""
    to_dict = getattr(result, "to_dict", None)
    if callable(to_dict):
        try:
            return to_dict()
        except Exception:  # noqa: BLE001 - durability is best-effort here
            return None
    from repro.service.protocol import json_safe

    if result is None:
        return None
    safe = json_safe(result)
    return safe if isinstance(safe, (dict, list, str, int, float)) else None


def _wire_error(error: BaseException | None) -> dict | None:
    """An exception as its journal form (protocol code + message)."""
    if error is None:
        return None
    from repro.service.protocol import error_code_for

    code = getattr(error, "error_code", None) or error_code_for(error)
    return {"code": code, "message": str(error)}


@dataclass
class Job:
    """The manager's mutable record of one submitted job.

    Consumers should not hold onto this object across threads; use
    :meth:`JobManager.status` (which locks) or the service layer's
    immutable snapshots instead.
    """

    job_id: str
    status: str = "pending"
    submitted_at: float = field(default_factory=time.perf_counter)
    started_at: float | None = None
    finished_at: float | None = None
    result: Any = None
    error: BaseException | None = None
    partial: list = field(default_factory=list)
    events: list = field(default_factory=list, repr=False)
    cancel_event: threading.Event = field(default_factory=threading.Event)
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    #: Set (under the lock) when the manager forgets the job; blocked
    #: event streamers check it to fail fast instead of waiting forever.
    pruned: bool = False
    #: The wire payload that created the job (what a journal records and
    #: a resume re-executes); None for submissions without one.
    journal_payload: dict | None = None
    #: Timings carried over from a journal restore; when set they win
    #: over the perf-counter fields (which describe *this* process).
    restored_timings: dict | None = None
    #: Zero-argument callbacks fired (with the job lock held) whenever
    #: waiters are woken — events appended, terminal transitions,
    #: prunes.  This is the async front-end's wakeup path: instead of
    #: parking a thread per subscriber in :meth:`JobManager.events_since`,
    #: an event loop registers ``loop.call_soon_threadsafe`` here and
    #: polls the log non-blockingly when pinged.  Watchers MUST be
    #: non-blocking and must not touch the job.
    watchers: list = field(default_factory=list, repr=False)

    def __post_init__(self):
        # Shares the job lock, so event appends and state transitions
        # wake streaming waiters atomically.
        self.event_cond = threading.Condition(self.lock)

    def wake(self) -> None:
        """Wake condition waiters and fire watchers (lock must be held)."""
        self.event_cond.notify_all()
        for watcher in tuple(self.watchers):
            try:
                watcher()
            except Exception:  # noqa: BLE001 - a watcher must never kill a job
                pass

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.status in TERMINAL_STATES

    def record_event(self, stage: str, payload: Any,
                     mapper: "Callable[[int, str, Any], Any] | None" = None
                     ) -> "tuple[int, Any]":
        """Append one numbered event and wake streaming consumers.

        ``mapper(seq, stage, payload)`` transforms the payload before it
        is stored — the service passes its wire serializer here, so the
        event log holds small JSON-able summaries instead of raw pipeline
        artifacts (which would pin per-query slices and tables for the
        job's whole lifetime).  Must be called *without* the job lock
        held.  Returns ``(seq, stored_item)`` so the manager can journal
        exactly what the log holds.
        """
        with self.event_cond:
            # Next after the last *seq*, not len+1: a journal-restored
            # log can have gaps (a dropped append, a corrupt record
            # skipped on replay), and a duplicate seq would make the
            # next restart's fold silently replace the real event.
            seq = (self.events[-1][0] + 1) if self.events else 1
            item = payload if mapper is None else mapper(seq, stage, payload)
            self.events.append((seq, stage, item))
            self.wake()
        return seq, item

    def timings_ms(self) -> dict[str, float]:
        """Queue and run durations so far, in milliseconds."""
        if self.restored_timings is not None:
            return dict(self.restored_timings)
        now = time.perf_counter()
        timings: dict[str, float] = {}
        started = self.started_at
        timings["queued"] = ((started if started is not None else now)
                             - self.submitted_at) * 1000.0
        if started is not None:
            end = self.finished_at if self.finished_at is not None else now
            timings["run"] = (end - started) * 1000.0
        return timings


class JobManager:
    """Tracks jobs and runs them through an executor backend.

    Args:
        max_workers: worker count for the default thread backend (and
            recorded for introspection); ignored when ``backend`` is
            given.
        name: thread-name prefix (shows up in debuggers and logs).
        backend: the execution backend; defaults to a
            :class:`ThreadExecutor` of ``max_workers`` threads — exactly
            the pre-refactor behaviour.  The manager takes ownership and
            closes it on :meth:`shutdown`.
        max_finished: most terminal jobs kept queryable (older ones are
            pruned oldest-first on submission); None = unbounded.
        finished_ttl: seconds a terminal job stays queryable; None = no
            time limit.
        journal: optional :class:`~repro.persistence.JobJournal`; when
            given, every lifecycle step is appended (journal faults are
            absorbed into :attr:`journal_errors`, never into the job).
            The manager *borrows* the journal — closing it is the
            durable-state owner's job.
    """

    def __init__(self, max_workers: int = 2, name: str = "ziggy-job",
                 backend: Executor | None = None,
                 max_finished: int | None = DEFAULT_MAX_FINISHED,
                 finished_ttl: float | None = None,
                 journal=None):
        self.backend = (backend if backend is not None
                        else ThreadExecutor(max_workers=max_workers,
                                            name=name))
        self.max_finished = max_finished
        self.finished_ttl = finished_ttl
        self._journal = journal
        #: Serializes this manager's appends against its compactions: a
        #: compaction snapshots the live job table and then swaps the
        #: segments, and a record appended between those two steps would
        #: be dropped by the swap.  Held only around whole journal
        #: calls, never while taking the manager or a job lock.
        self._journal_lock = threading.Lock()
        #: Appends the journal swallowed (disk full, encoding faults):
        #: durability degraded, but the live jobs stayed healthy.
        self.journal_errors = 0
        self._jobs: dict[str, Job] = {}
        self._handles: dict[str, ExecutionHandle] = {}
        self._next_id = 1
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------

    def submit(self, work: WorkFn | None = None,
               on_progress: ProgressFn | None = None,
               event_mapper: Callable[[int, str, Any], Any] | None = None,
               *, task: CharacterizationTask | None = None,
               result_mapper: Callable[[Any], Any] | None = None,
               journal_payload: dict | None = None,
               job_id: str | None = None) -> str:
        """Queue work on the backend and return its job ID.

        ``work`` is an in-process callable invoked with a progress
        function it must call between units of work; ``task`` is the
        serializable equivalent for backends that cross a process
        boundary.  Callers may pass either or both — the manager picks
        the form its backend supports (callable preferred locally).

        ``on_progress`` additionally forwards every event to the caller
        (e.g. a streaming HTTP response); ``event_mapper`` transforms
        payloads before they enter the job's event log (see
        :meth:`Job.record_event`); ``result_mapper`` post-processes a
        successful result *before* it is stored on the job (the service
        uses it to turn a worker shard's raw pipeline result into a wire
        response and to record session history).

        ``journal_payload`` is the JSON-able request recorded with the
        submission when a journal is attached — the payload recovery
        re-executes on ``--recover resume``.  ``job_id`` re-attaches the
        work to an :meth:`adopt`-restored record (resume) instead of
        allocating a fresh id; the restored event log is kept, so the
        re-run's events append after the journaled ones.
        """
        if self.backend.supports_callables:
            unit: Any = work if work is not None else task
        else:
            unit = task
        if unit is None:
            raise ExecutorError(
                f"the {self.backend.kind!r} backend needs a serializable "
                "task for this submission, and none was provided")
        with self._lock:
            doomed = self._prune_locked()
            fresh = job_id is None or job_id not in self._jobs
            if fresh:
                if job_id is None:
                    job_id = f"job-{self._next_id:06d}"
                    self._next_id += 1
                else:
                    self._observe_id_locked(job_id)
                job = Job(job_id=job_id)
                if journal_payload is not None:
                    job.journal_payload = dict(journal_payload)
                self._jobs[job_id] = job
            else:
                job = self._jobs[job_id]
        self._wake_pruned(doomed)
        self._journal_pruned(doomed)
        if fresh:
            self._append_journal(
                submit_record(job_id, job.journal_payload))

        def begin() -> None:
            with job.event_cond:
                if job.cancel_event.is_set() or job.finished:
                    raise JobCancelled(job.job_id)
                job.status = "running"
                job.started_at = time.perf_counter()
                # A resumed run measures its own queue/run clock.
                job.restored_timings = None
            self._append_journal(state_record(job.job_id, "running"))

        def finish(status: str, result: Any,
                   error: BaseException | None) -> None:
            with job.event_cond:
                if job.finished:  # cancel/finish races resolve first-wins
                    job.wake()
                    return
            # Map outside the job lock (the mapper may take session
            # locks) and only for a job that is still live — a job
            # already terminal must not grow history side effects.
            if status == "done" and result_mapper is not None:
                try:
                    result = result_mapper(result)
                except BaseException as exc:  # noqa: BLE001 - surfaces on job
                    status, result, error = "failed", None, exc
            with job.event_cond:
                if job.finished:
                    job.wake()
                    return
                job.status = status
                job.result = result
                job.error = error
                job.finished_at = time.perf_counter()
                job.wake()
            self._journal_terminal(job)

        try:
            handle = self.backend.submit(
                unit, begin=begin,
                progress=self._progress_fn(job, on_progress, event_mapper),
                finish=finish)
        except BaseException:
            # The backend rejected the work (e.g. already closed): a
            # just-created record must not linger as a forever-pending
            # ghost that retention never prunes — and its journaled
            # submit record must not resurrect on the next restart a
            # job whose submission the caller saw fail.  An adopted
            # record (resume) stays — the caller decides its fate.
            if fresh:
                with self._lock:
                    self._jobs.pop(job_id, None)
                self._append_journal(prune_record([job_id]))
            raise
        with self._lock:
            if job_id in self._jobs:  # not pruned while submitting
                self._handles[job_id] = handle
        return job_id

    def _observe_id_locked(self, job_id: str) -> None:
        """Keep the id allocator ahead of externally supplied ids."""
        _, _, digits = job_id.rpartition("-")
        if digits.isdigit():
            self._next_id = max(self._next_id, int(digits) + 1)

    def _progress_fn(self, job: Job, on_progress: ProgressFn | None,
                     event_mapper: Callable[[int, str, Any], Any] | None
                     ) -> ProgressFn:
        """The per-job progress callback: cancellation checks, partial
        capture, event log, caller relay — identical for every backend."""

        def progress(stage: str, payload: Any) -> None:
            if job.cancel_event.is_set():
                raise JobCancelled(job.job_id)
            if stage == "view":
                with job.lock:
                    job.partial.append(payload)
                    rank = len(job.partial)
                # Record the keep-order rank with the view, so event
                # consumers never rescan the log to reconstruct it.
                seq, item = job.record_event(stage, (rank, payload),
                                             event_mapper)
            elif stage == "worker-restart":
                # The job's worker died and the task re-executes from
                # scratch on a respawned shard: drop the aborted
                # attempt's partial views so the retry's stream rebuilds
                # them with correct ranks (the event log keeps the full
                # history, restart marker included).
                with job.lock:
                    job.partial.clear()
                seq, item = job.record_event(stage, payload, event_mapper)
            else:
                seq, item = job.record_event(stage, payload, event_mapper)
            self._journal_event(job, seq, stage, item)
            if on_progress is not None:
                on_progress(stage, payload)
            # Re-check after the caller's hook: a cancel that arrived while
            # the hook ran (or blocked) must not be lost until the next event.
            if job.cancel_event.is_set():
                raise JobCancelled(job.job_id)

        return progress

    # -- durability --------------------------------------------------------------

    def _append_journal(self, record: dict,
                        fallback: dict | None = None) -> None:
        """Append one record, absorbing faults into ``journal_errors``.

        ``fallback`` is a stripped-down replacement for records whose
        payload turned out not to be JSON-able — losing a result blob is
        survivable, losing the *status* record would resurrect the job
        as in-flight on the next restart.
        """
        if self._journal is None:
            return
        try:
            with self._journal_lock:
                self._journal.append(record)
        except (TypeError, ValueError):
            if fallback is not None:
                try:
                    with self._journal_lock:
                        self._journal.append(fallback)
                    return
                except Exception:  # noqa: BLE001 - counted below
                    pass
            self._count_journal_error()
        except Exception:  # noqa: BLE001 - disk faults must not kill jobs
            self._count_journal_error()

    def _count_journal_error(self) -> None:
        # Under the lock: concurrent faulting appends must not lose
        # counts — /v2/state exists to surface degraded durability.
        with self._journal_lock:
            self.journal_errors += 1

    def compact_journal(self) -> int:
        """Rewrite the journal as exactly the live job table.

        Runs with the append lock held, so a record landing during the
        snapshot-and-swap cannot fall between the snapshotted state and
        the deleted history.  Returns the number of records written.
        """
        if self._journal is None:
            return 0
        with self._journal_lock:
            return self._journal.compact(self.journal_records())

    def _journal_event(self, job: Job, seq: int, stage: str,
                       item: Any) -> None:
        if self._journal is None:
            return
        kind, data = _wire_event(stage, item)
        self._append_journal(
            event_record(job.job_id, seq, kind, data),
            fallback=event_record(job.job_id, seq, kind,
                                  {"info": repr(data)}))

    def _journal_terminal(self, job: Job) -> None:
        """Append a job's terminal record (status + outcome + timings)."""
        if self._journal is None:
            return
        with job.lock:
            status = job.status
            result = job.result
            error = job.error
            timings = job.timings_ms()
        self._append_journal(
            state_record(job.job_id, status, result=_wire_result(result),
                         error=_wire_error(error), timings=timings),
            fallback=state_record(job.job_id, status,
                                  error=_wire_error(error),
                                  timings=timings))

    def _journal_pruned(self, doomed: "list[Job]") -> None:
        if doomed:
            self._append_journal(
                prune_record(job.job_id for job in doomed))

    def adopt(self, job_id: str, *, status: str, events: "list | tuple" = (),
              result: Any = None, error: BaseException | None = None,
              timings: dict | None = None,
              journal_payload: dict | None = None,
              journal: bool = False) -> Job:
        """Install a restored job record (the recovery orchestrator's
        write path into the manager).

        ``events`` is the restored event log — ``(seq, kind, item)``
        triples whose sequence numbers are preserved verbatim, so fresh
        events (and reconnecting ``events_since`` cursors) continue the
        journaled numbering.  ``journal=True`` additionally appends the
        adopted state (used when adoption itself *changes* state, e.g.
        in-flight → ``interrupted``; plain restores skip it — their
        records are already in the journal).
        """
        job = Job(job_id=job_id)
        job.status = status
        job.events = list(events)
        job.result = result
        job.error = error
        job.journal_payload = (dict(journal_payload)
                               if journal_payload is not None else None)
        job.restored_timings = dict(timings) if timings is not None else {}
        if status in TERMINAL_STATES:
            job.finished_at = time.perf_counter()  # honest TTL clock
        with self._lock:
            self._observe_id_locked(job_id)
            self._jobs[job_id] = job
        if journal:
            self._journal_terminal(job)
        return job

    def fail_adopted(self, job_id: str, error: BaseException) -> Job:
        """Move an adopted (still pending) job to ``interrupted`` — the
        recovery fallback when a resume could not be re-submitted."""
        job = self.get(job_id)
        with job.event_cond:
            if not job.finished:
                job.status = "interrupted"
                job.error = error
                job.finished_at = time.perf_counter()
            job.wake()
        self._journal_terminal(job)
        return job

    def record_external_event(self, job_id: str, stage: str, payload: Any,
                              event_mapper: Callable[[int, str, Any], Any]
                              | None = None) -> int:
        """Append one out-of-band event to a job's log (journaled).

        Recovery uses this to stamp ``coordinator-restart`` markers on
        resumed jobs; returns the event's sequence number.
        """
        job = self.get(job_id)
        seq, item = job.record_event(stage, payload, event_mapper)
        self._journal_event(job, seq, stage, item)
        return seq

    def journal_records(self) -> "list[dict]":
        """The live job table as journal records — what a compaction
        rewrites the journal to."""
        with self._lock:
            jobs = list(self._jobs.values())
        records: list[dict] = []
        for job in jobs:
            with job.lock:
                status = job.status
                events = list(job.events)
                payload = job.journal_payload
                result = job.result
                error = job.error
                timings = job.timings_ms()
            records.append(submit_record(job.job_id, payload))
            for seq, stage, item in events:
                kind, data = _wire_event(stage, item)
                records.append(event_record(job.job_id, seq, kind, data))
            if status in TERMINAL_STATES:
                records.append(state_record(
                    job.job_id, status, result=_wire_result(result),
                    error=_wire_error(error), timings=timings))
            elif status == "running":
                records.append(state_record(job.job_id, "running"))
        return records

    # -- retention ---------------------------------------------------------------

    def _prune_locked(self) -> list[Job]:
        """Forget terminal jobs beyond the retention policy.

        Caller holds ``self._lock``.  Returns the pruned jobs (their
        waiters still need waking, which must happen without the manager
        lock — see :meth:`prune`).
        """
        terminal = [job for job in self._jobs.values() if job.finished]
        doomed: list[Job] = []
        if self.finished_ttl is not None:
            horizon = time.perf_counter() - self.finished_ttl
            doomed.extend(job for job in terminal
                          if (job.finished_at or 0.0) <= horizon)
        if self.max_finished is not None:
            keep = [job for job in terminal if job not in doomed]
            if len(keep) > self.max_finished:
                excess = len(keep) - self.max_finished
                # insertion order == submission order -> oldest first
                doomed.extend(keep[:excess])
        for job in doomed:
            self._jobs.pop(job.job_id, None)
            self._handles.pop(job.job_id, None)
        return doomed

    @staticmethod
    def _wake_pruned(doomed: list[Job]) -> None:
        for job in doomed:
            with job.event_cond:
                job.pruned = True
                job.wake()

    def prune(self) -> int:
        """Apply the retention policy now; returns pruned-job count."""
        with self._lock:
            doomed = self._prune_locked()
        self._wake_pruned(doomed)
        self._journal_pruned(doomed)
        return len(doomed)

    # -- observation -------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """The live job record (raises :class:`JobNotFoundError`)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(job_id)
        return job

    def job_ids(self) -> tuple[str, ...]:
        """All known job IDs, oldest first."""
        with self._lock:
            return tuple(self._jobs)

    def open_jobs(self) -> int:
        """How many jobs are not yet terminal (pending + running).

        The front-ends' bounded-submission-queue gauge: O(live jobs),
        which retention keeps small.  Reads statuses without the per-job
        locks — a gauge may be one transition stale.
        """
        with self._lock:
            return sum(1 for job in self._jobs.values() if not job.finished)

    def watch(self, job_id: str, callback: Callable[[], None]
              ) -> Callable[[], None]:
        """Register a wakeup callback on a job; returns the unregister.

        ``callback`` fires — with the job lock held, so it must be
        non-blocking (e.g. ``loop.call_soon_threadsafe``) — whenever the
        job appends an event, reaches a terminal state, or is pruned.
        It may fire spuriously; consumers re-read :meth:`events_since`
        with ``timeout=0`` and decide for themselves.  Raises
        :class:`JobNotFoundError` for unknown jobs.
        """
        job = self.get(job_id)
        with job.event_cond:
            job.watchers.append(callback)

        def unwatch() -> None:
            with job.event_cond:
                try:
                    job.watchers.remove(callback)
                except ValueError:
                    pass  # already removed (idempotent)

        return unwatch

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; returns the job record.

        A ``pending`` job is cancelled immediately (it never runs); a
        ``running`` job stops at its next progress event — for process
        shards that means a cancel message to the owning worker; a
        finished job is left untouched.
        """
        job = self.get(job_id)
        job.cancel_event.set()
        with self._lock:
            handle = self._handles.get(job_id)
        if handle is not None and handle.cancel():
            cancelled_here = False
            with job.event_cond:
                if not job.finished:
                    job.status = "cancelled"
                    job.finished_at = time.perf_counter()
                    cancelled_here = True
                job.wake()
            if cancelled_here:
                # The backend never ran the work, so no finish() will
                # journal this transition — do it here.
                self._journal_terminal(job)
        return job

    def events_since(self, job_id: str, after_seq: int = 0,
                     timeout: float | None = None
                     ) -> tuple[list[tuple[int, str, Any]], bool]:
        """Events with ``seq > after_seq``, blocking until some arrive.

        Returns ``(events, finished)``.  Blocks for at most ``timeout``
        seconds (None = until an event arrives or the job finishes); an
        empty list with ``finished=False`` means the wait timed out —
        streamers use that as their keep-alive tick.

        A stale cursor (``after_seq`` beyond the log) is not an error:
        it yields no events until newer ones arrive, and ``finished``
        still reports truthfully — that is how a reconnecting stream
        resumes.  Raises :class:`JobNotFoundError` when the job is
        unknown **or gets pruned mid-wait**; waiters are woken by the
        prune, and additionally re-check on a bounded slice so no call
        ever blocks forever on a forgotten job.
        """
        job = self.get(job_id)
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        with job.event_cond:
            while True:
                if job.pruned:
                    raise JobNotFoundError(job_id)
                # Sequence numbers ascend but need not be contiguous (a
                # journal-restored log can have gaps), so the cursor is
                # resolved by seq — bisect, since the log is sorted.
                cut = bisect_right(job.events, after_seq,
                                   key=lambda event: event[0])
                fresh = job.events[cut:]
                if fresh or job.finished:
                    return fresh, job.finished
                if deadline is None:
                    job.event_cond.wait(_WAIT_SLICE_SECONDS)
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return job.events[cut:], job.finished
                job.event_cond.wait(min(remaining, _WAIT_SLICE_SECONDS))

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state (or timeout)."""
        job = self.get(job_id)
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        with job.event_cond:
            while not job.finished and not job.pruned:
                if deadline is None:
                    job.event_cond.wait(_WAIT_SLICE_SECONDS)
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                job.event_cond.wait(min(remaining, _WAIT_SLICE_SECONDS))
        return job

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and close the backend (idempotent).

        With a journal attached the pending event-log writes are pushed
        to the device *before* the backend starts draining (so a drain
        that wedges can never cost already-acknowledged events), and
        flushed once more afterwards for the records the drain itself
        appended (in-flight jobs reaching their terminal state).  The
        journal stays open — its owner (the service's durable state)
        compacts and closes it after this returns.
        """
        if self._journal is not None:
            try:
                self._journal.flush(sync=True)
            except Exception:  # noqa: BLE001 - shutdown must proceed
                self._count_journal_error()
        self.backend.close(wait=wait)
        if self._journal is not None:
            try:
                self._journal.flush(sync=False)
            except Exception:  # noqa: BLE001
                self._count_journal_error()
