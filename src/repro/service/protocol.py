"""Protocol v2 — the typed request/response language of the service.

The paper's architecture is "the query characterization engine and a Web
server"; this module is the contract between them.  Every message is a
frozen dataclass with ``to_dict`` / ``from_dict`` round-tripping through
plain JSON-able dicts, so the HTTP server, the Python client, the v1
compatibility adapter and the tests all speak the same language.

Conventions:

* every serialized message carries ``"protocol": PROTOCOL_VERSION`` and a
  ``"type"`` tag; :func:`parse_request` / :func:`parse_response` dispatch
  on the tag.
* responses carry ``"ok": True``; errors are :class:`ApiError` with
  ``"ok": False`` and a stable machine-readable ``code``.
* every float is passed through :func:`json_safe`, which recursively
  replaces non-finite values with ``None`` (JSON has no ``inf``/``nan``)
  and converts numpy scalars/arrays to native types.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.core.views import CharacterizationResult, ComponentScore, ViewResult
from repro.errors import (
    ConfigError,
    EmptySelectionError,
    JobCancelled,
    JobInterruptedError,
    JobNotFoundError,
    NoActiveQueryError,
    ProtocolError,
    QuerySyntaxError,
    ReproError,
    ThrottledError,
    UnknownColumnError,
    UnknownDatasetError,
    UnknownTableError,
)

#: The protocol generation this module implements.
PROTOCOL_VERSION = 2

#: Default number of views per page when a request asks for pagination
#: without naming a size.
DEFAULT_PAGE_SIZE = 8


class ErrorCode:
    """Stable machine-readable error codes (string constants)."""

    BAD_REQUEST = "bad_request"
    UNKNOWN_ACTION = "unknown_action"
    UNKNOWN_TABLE = "unknown_table"
    UNKNOWN_COLUMN = "unknown_column"
    SYNTAX_ERROR = "syntax_error"
    EMPTY_SELECTION = "empty_selection"
    INVALID_CONFIG = "invalid_config"
    NO_ACTIVE_QUERY = "no_active_query"
    JOB_NOT_FOUND = "job_not_found"
    CANCELLED = "cancelled"
    INTERRUPTED = "interrupted"
    THROTTLED = "throttled"
    ERROR = "error"
    INTERNAL = "internal"


#: Exception type -> error code, checked in order (subclasses first).
_EXCEPTION_CODES: tuple[tuple[type, str], ...] = (
    (QuerySyntaxError, ErrorCode.SYNTAX_ERROR),
    (UnknownColumnError, ErrorCode.UNKNOWN_COLUMN),
    (UnknownTableError, ErrorCode.UNKNOWN_TABLE),
    (UnknownDatasetError, ErrorCode.UNKNOWN_TABLE),
    (EmptySelectionError, ErrorCode.EMPTY_SELECTION),
    (ConfigError, ErrorCode.INVALID_CONFIG),
    (NoActiveQueryError, ErrorCode.NO_ACTIVE_QUERY),
    (JobNotFoundError, ErrorCode.JOB_NOT_FOUND),
    (JobCancelled, ErrorCode.CANCELLED),
    (JobInterruptedError, ErrorCode.INTERRUPTED),
    (ThrottledError, ErrorCode.THROTTLED),
    (ProtocolError, ErrorCode.BAD_REQUEST),
    (ReproError, ErrorCode.ERROR),
)


def error_code_for(exc: BaseException) -> str:
    """The protocol error code for an exception (``internal`` fallback).

    An exception carrying an ``error_code`` attribute (e.g. a
    journal-restored job error whose original type did not survive the
    restart) keeps its recorded code instead of a type-derived one.
    """
    recorded = getattr(exc, "error_code", None)
    if recorded:
        return str(recorded)
    for exc_type, code in _EXCEPTION_CODES:
        if isinstance(exc, exc_type):
            return code
    return ErrorCode.INTERNAL


# ---------------------------------------------------------------------------
# JSON safety
# ---------------------------------------------------------------------------


def json_safe(value: Any) -> Any:
    """Recursively convert ``value`` into something ``json.dumps`` accepts.

    Non-finite floats become ``None`` (at any nesting depth — the fix for
    the v1 ``_json_safe`` that only looked at top-level scalars), numpy
    scalars become native Python numbers, numpy arrays and tuples become
    lists, and dict keys are stringified.
    """
    if isinstance(value, bool):  # before int: bool is an int subclass
        return value
    if isinstance(value, float):  # also catches np.float64 (a float subclass)
        return float(value) if math.isfinite(value) else None
    if isinstance(value, (int, str)) or value is None:
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value) if math.isfinite(float(value)) else None
    if isinstance(value, np.ndarray):
        return [json_safe(v) for v in value.tolist()]
    if isinstance(value, Mapping):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(v) for v in value]
    return value


def component_to_dict(score: ComponentScore) -> dict[str, Any]:
    """Serialize one component score (shared by protocol v2 and the v1
    adapter — shapes are identical)."""
    return {
        "component": score.component,
        "columns": list(score.columns),
        "raw": json_safe(score.raw),
        "normalized": json_safe(score.normalized),
        "weight": json_safe(score.weight),
        "direction": score.direction,
        "p_value": json_safe(score.p_value),
        "detail": json_safe(score.detail),
    }


def view_to_dict(result: ViewResult, rank: int) -> dict[str, Any]:
    """Serialize one ranked view."""
    return {
        "rank": rank,
        "columns": list(result.columns),
        "score": json_safe(result.score),
        "tightness": json_safe(result.tightness),
        "p_value": json_safe(result.p_value),
        "significant": result.significant,
        "explanation": result.explanation,
        "components": [component_to_dict(c) for c in result.components],
    }


# ---------------------------------------------------------------------------
# Envelope helpers
# ---------------------------------------------------------------------------


def _check_protocol(payload: Mapping) -> None:
    version = payload.get("protocol", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this server speaks {PROTOCOL_VERSION})")


def _require(payload: Mapping, key: str, kind: str) -> Any:
    if key not in payload or payload[key] is None:
        raise ProtocolError(f"{kind} requires field {key!r}")
    return payload[key]


def _opt_int(payload: Mapping, key: str, default: int | None) -> int | None:
    value = payload.get(key, default)
    if value is None:
        return None
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ProtocolError(f"field {key!r} must be an integer, "
                            f"got {value!r}") from None


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CharacterizeRequest:
    """Characterize one predicate's selection.

    Attributes:
        where: predicate text (the body of a WHERE clause).
        table: table name; optional when the session holds one table.
        client_id: session key — requests with the same client ID share
            history, configuration and statistics caches.
        page / page_size: pagination of the returned views
            (``page_size=None`` returns everything on one page).
        weights: component weight overrides applied before the query.
        options: :class:`ZiggyConfig` field overrides applied before the
            query.
    """

    where: str
    table: str | None = None
    client_id: str = "default"
    page: int = 1
    page_size: int | None = None
    weights: dict = field(default_factory=dict)
    options: dict = field(default_factory=dict)

    TYPE = "characterize"

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": self.TYPE, "protocol": PROTOCOL_VERSION,
            "where": self.where, "table": self.table,
            "client_id": self.client_id,
            "page": self.page, "page_size": self.page_size,
            "weights": json_safe(self.weights),
            "options": json_safe(self.options),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CharacterizeRequest":
        _check_protocol(payload)
        return cls(
            where=str(_require(payload, "where", cls.TYPE)),
            table=payload.get("table"),
            client_id=str(payload.get("client_id", "default")),
            page=_opt_int(payload, "page", 1) or 1,
            page_size=_opt_int(payload, "page_size", None),
            weights=dict(payload.get("weights") or {}),
            options=dict(payload.get("options") or {}),
        )


@dataclass(frozen=True)
class BatchRequest:
    """Characterize several predicates in one call, sharing statistics.

    Two shapes are accepted: ``predicates`` (all against one ``table``,
    the original form) or ``items`` — ``(table, where)`` pairs that may
    span several tables.  Either way the service's shard-aware batch
    scheduler groups the entries by owning table, so each table's
    predicates run back-to-back against one warm :class:`StatsCache`
    (and, on the process backend, each table's group runs on the one
    shard that owns its fingerprint) instead of interleaving cold
    submissions.  Results come back in submission order regardless of
    how the scheduler grouped them.
    """

    predicates: tuple[str, ...] = ()
    table: str | None = None
    client_id: str = "default"
    page_size: int | None = None
    options: dict = field(default_factory=dict)
    items: tuple = ()

    TYPE = "batch"

    def __post_init__(self):
        object.__setattr__(self, "predicates", tuple(self.predicates))
        object.__setattr__(self, "items", tuple(
            (table, str(where)) for table, where in self.items))
        if not self.predicates and not self.items:
            raise ProtocolError("a batch request needs at least one predicate")
        if self.predicates and self.items:
            raise ProtocolError(
                "a batch request takes either 'predicates' or 'items', "
                "not both")

    def entries(self) -> tuple:
        """The batch as ``(table, where)`` pairs, in submission order.

        ``table`` may be None (the session's sole table resolves it);
        ``items`` entries without a table fall back to ``self.table``.
        """
        if self.items:
            return tuple((table if table is not None else self.table, where)
                         for table, where in self.items)
        return tuple((self.table, where) for where in self.predicates)

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "type": self.TYPE, "protocol": PROTOCOL_VERSION,
            "predicates": list(self.predicates), "table": self.table,
            "client_id": self.client_id, "page_size": self.page_size,
            "options": json_safe(self.options),
        }
        if self.items:
            payload["items"] = [{"table": table, "where": where}
                                for table, where in self.items]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "BatchRequest":
        _check_protocol(payload)
        raw_items = payload.get("items")
        items: tuple = ()
        if raw_items:
            if isinstance(raw_items, (str, Mapping)) \
                    or not isinstance(raw_items, Sequence):
                raise ProtocolError(
                    "field 'items' must be a list of {table, where} objects")
            built = []
            for entry in raw_items:
                if not isinstance(entry, Mapping) or "where" not in entry:
                    raise ProtocolError(
                        "each batch item needs at least a 'where' field")
                built.append((entry.get("table"), str(entry["where"])))
            items = tuple(built)
        predicates = payload.get("predicates")
        if not items:
            predicates = _require(payload, "predicates", cls.TYPE)
        if predicates is not None and (
                isinstance(predicates, str)
                or not isinstance(predicates, Sequence)):
            raise ProtocolError("field 'predicates' must be a list of strings")
        return cls(
            predicates=tuple(str(p) for p in predicates or ()),
            table=payload.get("table"),
            client_id=str(payload.get("client_id", "default")),
            page_size=_opt_int(payload, "page_size", None),
            options=dict(payload.get("options") or {}),
            items=items,
        )


@dataclass(frozen=True)
class ViewPageRequest:
    """Page through the views of the client's current (latest) result."""

    client_id: str = "default"
    page: int = 1
    page_size: int | None = DEFAULT_PAGE_SIZE

    TYPE = "views"

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.TYPE, "protocol": PROTOCOL_VERSION,
                "client_id": self.client_id,
                "page": self.page, "page_size": self.page_size}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ViewPageRequest":
        _check_protocol(payload)
        return cls(client_id=str(payload.get("client_id", "default")),
                   page=_opt_int(payload, "page", 1) or 1,
                   page_size=_opt_int(payload, "page_size", DEFAULT_PAGE_SIZE))


@dataclass(frozen=True)
class JobSubmitRequest:
    """Submit a characterization to run asynchronously as a job."""

    request: CharacterizeRequest

    TYPE = "submit"

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.TYPE, "protocol": PROTOCOL_VERSION,
                "request": self.request.to_dict()}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "JobSubmitRequest":
        _check_protocol(payload)
        inner = _require(payload, "request", cls.TYPE)
        if not isinstance(inner, Mapping):
            raise ProtocolError("field 'request' must be a characterize "
                                "request object")
        return cls(request=CharacterizeRequest.from_dict(inner))


@dataclass(frozen=True)
class JobControlRequest:
    """Poll (``op="status"``) or cancel (``op="cancel"``) a job."""

    job_id: str
    op: str = "status"

    TYPE = "job"
    OPS = ("status", "cancel")

    def __post_init__(self):
        if self.op not in self.OPS:
            raise ProtocolError(f"job op must be one of {self.OPS}, "
                                f"got {self.op!r}")

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.TYPE, "protocol": PROTOCOL_VERSION,
                "job_id": self.job_id, "op": self.op}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "JobControlRequest":
        _check_protocol(payload)
        return cls(job_id=str(_require(payload, "job_id", cls.TYPE)),
                   op=str(payload.get("op", "status")))


@dataclass(frozen=True)
class TablesRequest:
    """List the tables registered with the service."""

    TYPE = "tables"

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.TYPE, "protocol": PROTOCOL_VERSION}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TablesRequest":
        _check_protocol(payload)
        return cls()


@dataclass(frozen=True)
class ConfigureRequest:
    """Adjust a client session's component weights and config options."""

    client_id: str = "default"
    weights: dict = field(default_factory=dict)
    options: dict = field(default_factory=dict)

    TYPE = "configure"

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.TYPE, "protocol": PROTOCOL_VERSION,
                "client_id": self.client_id,
                "weights": json_safe(self.weights),
                "options": json_safe(self.options)}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ConfigureRequest":
        _check_protocol(payload)
        return cls(client_id=str(payload.get("client_id", "default")),
                   weights=dict(payload.get("weights") or {}),
                   options=dict(payload.get("options") or {}))


@dataclass(frozen=True)
class StateRequest:
    """Report the service's durable-state health (journal, snapshots,
    recovery) — the typed form of ``GET /v2/state``."""

    TYPE = "state"

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.TYPE, "protocol": PROTOCOL_VERSION}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StateRequest":
        _check_protocol(payload)
        return cls()


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ViewPage:
    """One page of serialized views.

    ``page_size == 0`` means "unpaged" (everything on page 1).  An
    out-of-range page is not an error: it has empty ``items`` and
    ``has_next == False``, so clients can iterate until exhaustion.
    """

    items: tuple[dict, ...]
    page: int
    page_size: int
    total: int

    TYPE = "view_page"

    def __post_init__(self):
        object.__setattr__(self, "items", tuple(self.items))

    @property
    def has_next(self) -> bool:
        """Whether a later page holds more views."""
        if self.page_size <= 0:
            return False
        return self.page * self.page_size < self.total

    @classmethod
    def from_views(cls, views: Sequence[ViewResult], page: int = 1,
                   page_size: int | None = None) -> "ViewPage":
        """Slice ranked views into one page (ranks stay global)."""
        page = max(1, int(page))
        if page_size is None or page_size <= 0:
            start, stop, size = 0, len(views), 0
            page = 1
        else:
            size = int(page_size)
            start = (page - 1) * size
            stop = start + size
        items = tuple(view_to_dict(v, rank)
                      for rank, v in enumerate(views[start:stop],
                                               start=start + 1))
        return cls(items=items, page=page, page_size=size, total=len(views))

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.TYPE, "protocol": PROTOCOL_VERSION, "ok": True,
                "items": [dict(i) for i in self.items],
                "page": self.page, "page_size": self.page_size,
                "total": self.total, "has_next": self.has_next}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ViewPage":
        _check_protocol(payload)
        items = payload.get("items", [])
        return cls(items=tuple(dict(i) for i in items),
                   page=_opt_int(payload, "page", 1) or 1,
                   page_size=_opt_int(payload, "page_size", 0) or 0,
                   total=_opt_int(payload, "total", len(items)) or 0)


@dataclass(frozen=True)
class CharacterizeResponse:
    """The outcome of one characterization, with paginated views."""

    predicate: str
    table: str
    n_inside: int
    n_outside: int
    n_views: int
    timings_ms: dict
    views: ViewPage
    notes: tuple[str, ...] = ()

    TYPE = "characterize_result"

    def __post_init__(self):
        object.__setattr__(self, "notes", tuple(self.notes))

    @classmethod
    def from_result(cls, result: CharacterizationResult, table: str,
                    page: int = 1,
                    page_size: int | None = None) -> "CharacterizeResponse":
        """Build the response from a pipeline result."""
        return cls(
            predicate=result.predicate,
            table=table,
            n_inside=result.n_inside,
            n_outside=result.n_outside,
            n_views=len(result.views),
            timings_ms={k: json_safe(v * 1000.0)
                        for k, v in result.timings.items()},
            views=ViewPage.from_views(result.views, page=page,
                                      page_size=page_size),
            notes=tuple(result.notes),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": self.TYPE, "protocol": PROTOCOL_VERSION, "ok": True,
            "predicate": self.predicate, "table": self.table,
            "n_inside": self.n_inside, "n_outside": self.n_outside,
            "n_views": self.n_views,
            "timings_ms": json_safe(self.timings_ms),
            "views": self.views.to_dict(),
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CharacterizeResponse":
        _check_protocol(payload)
        return cls(
            predicate=str(_require(payload, "predicate", cls.TYPE)),
            table=str(payload.get("table", "")),
            n_inside=_opt_int(payload, "n_inside", 0) or 0,
            n_outside=_opt_int(payload, "n_outside", 0) or 0,
            n_views=_opt_int(payload, "n_views", 0) or 0,
            timings_ms=dict(payload.get("timings_ms") or {}),
            views=ViewPage.from_dict(payload.get("views") or
                                     {"items": [], "page": 1,
                                      "page_size": 0, "total": 0}),
            notes=tuple(payload.get("notes") or ()),
        )


@dataclass(frozen=True)
class BatchResponse:
    """The outcomes of a batch, plus the shared-cache evidence."""

    results: tuple[CharacterizeResponse, ...]
    total_time_ms: float
    cache_hits: int | None = None
    cache_misses: int | None = None

    TYPE = "batch_result"

    def __post_init__(self):
        object.__setattr__(self, "results", tuple(self.results))

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": self.TYPE, "protocol": PROTOCOL_VERSION, "ok": True,
            "results": [r.to_dict() for r in self.results],
            "total_time_ms": json_safe(self.total_time_ms),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "BatchResponse":
        _check_protocol(payload)
        return cls(
            results=tuple(CharacterizeResponse.from_dict(r)
                          for r in payload.get("results") or ()),
            total_time_ms=float(payload.get("total_time_ms", 0.0)),
            cache_hits=_opt_int(payload, "cache_hits", None),
            cache_misses=_opt_int(payload, "cache_misses", None),
        )


@dataclass(frozen=True)
class JobSnapshot:
    """A point-in-time view of a job's lifecycle.

    ``partial_views`` holds the views streamed so far (the progressive
    results); ``result`` is set once the job is ``done``; ``error`` once
    it ``failed``.
    """

    job_id: str
    status: str
    timings_ms: dict = field(default_factory=dict)
    partial_views: tuple[dict, ...] = ()
    result: CharacterizeResponse | None = None
    error: "ApiError | None" = None

    TYPE = "job_status"

    def __post_init__(self):
        object.__setattr__(self, "partial_views", tuple(self.partial_views))

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state (``interrupted`` is
        one: the coordinator restarted and did not resume the job)."""
        return self.status in ("done", "failed", "cancelled", "interrupted")

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": self.TYPE, "protocol": PROTOCOL_VERSION, "ok": True,
            "job_id": self.job_id, "status": self.status,
            "timings_ms": json_safe(self.timings_ms),
            "partial_views": [dict(v) for v in self.partial_views],
            "result": self.result.to_dict() if self.result else None,
            "error": self.error.to_dict() if self.error else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "JobSnapshot":
        _check_protocol(payload)
        result = payload.get("result")
        error = payload.get("error")
        return cls(
            job_id=str(_require(payload, "job_id", cls.TYPE)),
            status=str(_require(payload, "status", cls.TYPE)),
            timings_ms=dict(payload.get("timings_ms") or {}),
            partial_views=tuple(dict(v)
                                for v in payload.get("partial_views") or ()),
            result=(CharacterizeResponse.from_dict(result)
                    if result else None),
            error=ApiError.from_dict(error) if error else None,
        )


@dataclass(frozen=True)
class TableInfo:
    """Catalog entry for one registered table."""

    name: str
    rows: int
    columns: int
    column_names: tuple[str, ...]

    def __post_init__(self):
        object.__setattr__(self, "column_names", tuple(self.column_names))

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "rows": self.rows,
                "columns": self.columns,
                "column_names": list(self.column_names)}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TableInfo":
        return cls(name=str(payload.get("name", "")),
                   rows=_opt_int(payload, "rows", 0) or 0,
                   columns=_opt_int(payload, "columns", 0) or 0,
                   column_names=tuple(payload.get("column_names") or ()))


@dataclass(frozen=True)
class TableList:
    """The service catalog."""

    tables: tuple[TableInfo, ...]

    TYPE = "table_list"

    def __post_init__(self):
        object.__setattr__(self, "tables", tuple(self.tables))

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.TYPE, "protocol": PROTOCOL_VERSION, "ok": True,
                "tables": [t.to_dict() for t in self.tables]}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TableList":
        _check_protocol(payload)
        return cls(tables=tuple(TableInfo.from_dict(t)
                                for t in payload.get("tables") or ()))


@dataclass(frozen=True)
class ConfigureResponse:
    """Acknowledges a configuration change; echoes the effective weights."""

    weights: dict
    applied: tuple[str, ...] = ()

    TYPE = "configure_result"

    def __post_init__(self):
        object.__setattr__(self, "applied", tuple(self.applied))

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.TYPE, "protocol": PROTOCOL_VERSION, "ok": True,
                "weights": json_safe(self.weights),
                "applied": list(self.applied)}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ConfigureResponse":
        _check_protocol(payload)
        return cls(weights=dict(payload.get("weights") or {}),
                   applied=tuple(payload.get("applied") or ()))


@dataclass(frozen=True)
class StateReport:
    """The durable-state health report (the ``GET /v2/state`` body).

    ``enabled`` is False for a fully in-memory service — the other
    sections are then empty.  ``journal`` / ``snapshots`` carry the
    write-side counters of :mod:`repro.persistence`; ``recovery`` is the
    last boot's :class:`~repro.persistence.RecoveryReport` (or None when
    the journal was empty / no recovery ran); ``runtime`` is the shared
    runtime's table-store + registry snapshot; ``jobs`` counts the
    manager's live records by status.
    """

    enabled: bool
    state_dir: str | None = None
    uptime_seconds: float = 0.0
    journal: dict = field(default_factory=dict)
    snapshots: dict = field(default_factory=dict)
    recovery: dict | None = None
    runtime: dict = field(default_factory=dict)
    jobs: dict = field(default_factory=dict)
    #: Front-end saturation counters (open/peak SSE subscribers,
    #: evictions, throttle/queue rejections); None when the report was
    #: produced outside an HTTP front-end.
    gateway: dict | None = None
    #: Process-wide stage/kernel timing aggregates from the profiler
    #: (``{name: {calls, total_s, max_s}}``); empty when profiling is
    #: disabled or nothing has run yet.
    profile: dict = field(default_factory=dict)

    TYPE = "state_report"

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "type": self.TYPE, "protocol": PROTOCOL_VERSION, "ok": True,
            "enabled": self.enabled, "state_dir": self.state_dir,
            "uptime_seconds": json_safe(self.uptime_seconds),
            "journal": json_safe(self.journal),
            "snapshots": json_safe(self.snapshots),
            "recovery": json_safe(self.recovery),
            "runtime": json_safe(self.runtime),
            "jobs": json_safe(self.jobs),
            "profile": json_safe(self.profile),
        }
        if self.gateway is not None:
            payload["gateway"] = json_safe(self.gateway)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StateReport":
        _check_protocol(payload)
        recovery = payload.get("recovery")
        return cls(
            enabled=bool(payload.get("enabled", False)),
            state_dir=payload.get("state_dir"),
            uptime_seconds=float(payload.get("uptime_seconds", 0.0) or 0.0),
            journal=dict(payload.get("journal") or {}),
            snapshots=dict(payload.get("snapshots") or {}),
            recovery=dict(recovery) if recovery else None,
            runtime=dict(payload.get("runtime") or {}),
            jobs=dict(payload.get("jobs") or {}),
            profile=dict(payload.get("profile") or {}),
            gateway=(dict(payload["gateway"])
                     if isinstance(payload.get("gateway"), Mapping)
                     else None),
        )


@dataclass(frozen=True)
class JobEvent:
    """One streamed execution event of a job (the SSE wire unit).

    ``seq`` is the job-local monotonic event number (clients resume a
    dropped stream by discarding events they have seen).  ``kind`` is a
    :mod:`repro.core.events` stage-event kind — ``prepared``,
    ``component-scored``, ``view-ranked``, ``search-complete``,
    ``view-ready``, ``result``, ``batch-item`` — or the terminal
    ``done`` event carrying the job's final status.  ``data`` is a small
    JSON-able summary of the stage artifact (full views for
    ``view-ranked``/``view-ready``, counts elsewhere).

    Jobs on the self-healing process backend may additionally emit a
    ``worker-restart`` event when their worker died and the task was
    re-enqueued on the respawned shard: ``data`` carries ``worker``,
    ``restart`` (the shard's respawn ordinal), ``attempt`` and
    ``exitcode``.  Stage events of the aborted attempt precede it;
    the retry's events follow from ``prepared`` again.
    """

    seq: int
    kind: str
    data: dict = field(default_factory=dict)

    TYPE = "job_event"

    #: The stream-terminating pseudo-kind.
    DONE = "done"

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.TYPE, "protocol": PROTOCOL_VERSION, "ok": True,
                "seq": self.seq, "kind": self.kind,
                "data": json_safe(self.data)}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "JobEvent":
        _check_protocol(payload)
        return cls(seq=_opt_int(payload, "seq", 0) or 0,
                   kind=str(_require(payload, "kind", cls.TYPE)),
                   data=dict(payload.get("data") or {}))


#: Legacy progress-stage name -> wire event kind (identity for the
#: already-typed kinds the pipeline forwards through the job log).
_WIRE_KIND_FOR_STAGE = {
    "preparation": "prepared",
    "view": "view-ranked",
    "search": "search-complete",
    "batch_item": "batch-item",
}


def job_event_from_stage(seq: int, stage: str, payload: Any) -> JobEvent:
    """Serialize one recorded job progress event for the wire.

    The payloads are pipeline-internal objects; each kind maps to a small
    JSON-able summary (duck-typed so the protocol stays import-light).
    Both view kinds arrive as ``(rank, ViewResult)`` — the job manager
    stamps the keep-order rank on streamed views, the pipeline stamps the
    final rank on ready views.
    """
    kind = _WIRE_KIND_FOR_STAGE.get(stage, stage)
    data: dict[str, Any]
    if kind in ("view-ranked", "view-ready") and isinstance(payload, tuple) \
            and len(payload) == 2 and isinstance(payload[1], ViewResult):
        rank, view = payload
        data = view_to_dict(view, int(rank))
    elif kind == "view-ranked" and isinstance(payload, ViewResult):
        data = view_to_dict(payload, 0)  # rank unknown outside a job run
    elif kind == "result" and isinstance(payload, CharacterizationResult):
        data = {
            "n_views": len(payload.views),
            "predicate": payload.predicate,
            "n_inside": payload.n_inside,
            "n_outside": payload.n_outside,
            "timings_ms": {k: json_safe(v * 1000.0)
                           for k, v in payload.timings.items()},
        }
    elif kind == "prepared":
        data = {
            "n_columns": len(getattr(payload, "active_columns", ()) or ()),
            "notes": list(getattr(payload, "notes", ()) or ()),
        }
    elif kind == "component-scored":
        # Local runs carry the full catalog; cross-process runs carry the
        # executor layer's CatalogSummary, which pre-counts.
        if hasattr(payload, "n_unary"):
            data = {"n_unary": int(payload.n_unary),
                    "n_pairwise": int(payload.n_pairwise)}
        else:
            unary = getattr(payload, "unary", {}) or {}
            pairwise = getattr(payload, "pairwise", {}) or {}
            data = {
                "n_unary": sum(len(v) for v in unary.values()),
                "n_pairwise": sum(len(v) for v in pairwise.values()),
            }
    elif kind == "search-complete":
        data = {
            "n_candidates": int(getattr(payload, "n_candidates", 0) or 0),
            "n_views": (int(payload.n_views) if hasattr(payload, "n_views")
                        else len(getattr(payload, "views", ()) or ())),
        }
    elif kind == "batch-item" and isinstance(payload, tuple) \
            and len(payload) == 2:
        # Local runs carry (index, full result); cross-process runs
        # carry (index, BatchItemSummary) — both pre-count the views.
        index, result = payload
        data = {"index": int(index),
                "n_views": (int(result.n_views)
                            if hasattr(result, "n_views")
                            else len(getattr(result, "views", ()) or ()))}
    else:
        safe = json_safe(payload)
        data = safe if isinstance(safe, dict) else {"info": repr(payload)}
    return JobEvent(seq=seq, kind=kind, data=data)


@dataclass(frozen=True)
class ApiError:
    """A structured error — what every failure serializes to.

    ``code`` is machine-readable (see :class:`ErrorCode`), ``message`` is
    for humans, ``detail`` carries optional context (e.g. the available
    actions for ``unknown_action``).
    """

    code: str
    message: str
    detail: dict = field(default_factory=dict)

    TYPE = "error"

    @classmethod
    def from_exception(cls, exc: BaseException,
                       detail: dict | None = None) -> "ApiError":
        """Map an exception onto a protocol error."""
        return cls(code=error_code_for(exc), message=str(exc),
                   detail=detail or {})

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.TYPE, "protocol": PROTOCOL_VERSION, "ok": False,
                "error": {"code": self.code, "message": self.message,
                          "detail": json_safe(self.detail)}}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ApiError":
        _check_protocol(payload)
        body = payload.get("error")
        if not isinstance(body, Mapping):
            raise ProtocolError("error payload missing 'error' object")
        return cls(code=str(body.get("code", ErrorCode.ERROR)),
                   message=str(body.get("message", "")),
                   detail=dict(body.get("detail") or {}))


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

#: Request tag -> class, for :func:`parse_request`.
REQUEST_TYPES: dict[str, Any] = {
    CharacterizeRequest.TYPE: CharacterizeRequest,
    BatchRequest.TYPE: BatchRequest,
    ViewPageRequest.TYPE: ViewPageRequest,
    JobSubmitRequest.TYPE: JobSubmitRequest,
    JobControlRequest.TYPE: JobControlRequest,
    TablesRequest.TYPE: TablesRequest,
    ConfigureRequest.TYPE: ConfigureRequest,
    StateRequest.TYPE: StateRequest,
}

#: Response tag -> class, for :func:`parse_response`.
RESPONSE_TYPES: dict[str, Any] = {
    ViewPage.TYPE: ViewPage,
    CharacterizeResponse.TYPE: CharacterizeResponse,
    BatchResponse.TYPE: BatchResponse,
    JobSnapshot.TYPE: JobSnapshot,
    JobEvent.TYPE: JobEvent,
    TableList.TYPE: TableList,
    ConfigureResponse.TYPE: ConfigureResponse,
    StateReport.TYPE: StateReport,
    ApiError.TYPE: ApiError,
}


def _parse(payload: Any, registry: dict[str, Any], kind: str) -> Any:
    if not isinstance(payload, Mapping):
        raise ProtocolError(f"a {kind} must be a JSON object, "
                            f"got {type(payload).__name__}")
    tag = payload.get("type")
    cls: Callable | None = registry.get(tag)
    if cls is None:
        raise ProtocolError(
            f"unknown {kind} type {tag!r} "
            f"(available: {', '.join(sorted(registry))})")
    return cls.from_dict(payload)


def parse_request(payload: Any):
    """Turn a decoded JSON payload into a typed request."""
    return _parse(payload, REQUEST_TYPES, "request")


def parse_response(payload: Any):
    """Turn a decoded JSON payload into a typed response."""
    return _parse(payload, RESPONSE_TYPES, "response")
