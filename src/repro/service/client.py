"""A Python client for the v2 HTTP service (stdlib ``urllib`` only).

Example::

    from repro.service.client import ZiggyClient

    client = ZiggyClient("http://127.0.0.1:8765")
    response = client.characterize("gross > 200000000", table="boxoffice")
    for view in response.views.items:
        print(view["explanation"])

    job = client.submit("budget > 50000000")
    snapshot = client.wait(job.job_id)
    print(snapshot.status, len(snapshot.result.views.items))
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Iterator, Mapping

from repro.errors import ServiceError
from repro.service.protocol import (
    ApiError,
    BatchRequest,
    BatchResponse,
    CharacterizeRequest,
    CharacterizeResponse,
    ConfigureRequest,
    ConfigureResponse,
    JobEvent,
    JobSnapshot,
    JobSubmitRequest,
    StateReport,
    TableList,
    ViewPage,
    ViewPageRequest,
    parse_response,
)


class RemoteError(ServiceError):
    """The server answered with a structured :class:`ApiError`.

    ``retry_after`` is populated on 429 (throttled/backpressure)
    responses: the exact wait from ``error.detail.retry_after`` when the
    server sent one, else the integer ``Retry-After`` header.
    """

    def __init__(self, error: ApiError, status: int = 0,
                 retry_after: float | None = None):
        self.error = error
        self.code = error.code
        self.status = status
        self.retry_after = retry_after
        super().__init__(f"[{error.code}] {error.message}")


class TransportError(ServiceError):
    """The server could not be reached or spoke something other than the
    protocol (connection refused, timeouts, non-JSON bodies)."""


def _retry_after_seconds(decoded: Mapping,
                         header: str | None) -> float | None:
    """The server's retry hint: exact float from ``detail.retry_after``
    when present, else the integer ``Retry-After`` header."""
    error = decoded.get("error")
    if isinstance(error, Mapping):
        detail = error.get("detail")
        if isinstance(detail, Mapping) and "retry_after" in detail:
            try:
                return float(detail["retry_after"])
            except (TypeError, ValueError):
                pass
    if header is not None:
        try:
            return float(str(header).strip())
        except ValueError:
            pass
    return None


class ZiggyClient:
    """Speaks protocol v2 to a :mod:`repro.service.server` endpoint.

    Args:
        base_url: e.g. ``"http://127.0.0.1:8765"`` (no trailing slash
            needed).
        timeout: per-request socket timeout in seconds.
        client_id: the session key sent with every stateful request.
        throttle_retries: how many times a request answered ``429`` is
            retried after honouring the server's ``Retry-After`` before
            the :class:`RemoteError` is surfaced; 0 disables retrying.
        max_retry_wait: upper bound (seconds) on any single throttle
            wait, whatever the server asked for.
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 client_id: str = "default", throttle_retries: int = 2,
                 max_retry_wait: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.client_id = client_id
        self.throttle_retries = throttle_retries
        self.max_retry_wait = max_retry_wait

    # -- transport ---------------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Mapping | None = None) -> Any:
        """One round trip, transparently retrying throttled (429)
        responses up to ``throttle_retries`` times, pacing each retry by
        the server's ``Retry-After``."""
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except RemoteError as exc:
                if (exc.status != 429 or exc.retry_after is None
                        or attempt >= self.throttle_retries):
                    raise
                attempt += 1
                time.sleep(max(0.0, min(exc.retry_after,
                                        self.max_retry_wait)))

    def _request_once(self, method: str, path: str,
                      payload: Mapping | None = None) -> Any:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers,
                                         method=method)
        retry_header = None
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                body = response.read()
                status = response.status
        except urllib.error.HTTPError as exc:
            body = exc.read()
            status = exc.code
            retry_header = exc.headers.get("Retry-After")
        except (urllib.error.URLError, OSError) as exc:
            raise TransportError(f"{method} {url}: {exc}") from exc
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TransportError(
                f"{method} {url}: non-JSON response "
                f"(HTTP {status}): {exc}") from None
        if isinstance(decoded, Mapping) and decoded.get("ok") is False:
            retry_after = _retry_after_seconds(decoded, retry_header)
            if decoded.get("type") == ApiError.TYPE:
                raise RemoteError(ApiError.from_dict(decoded), status=status,
                                  retry_after=retry_after)
            # v1 endpoint errors are plain {"ok": False, "error": str}.
            raise RemoteError(ApiError(
                code=str(decoded.get("code", "error")),
                message=str(decoded.get("error", "request failed"))),
                status=status, retry_after=retry_after)
        return decoded

    def _post(self, path: str, payload: Mapping) -> Any:
        return self._request("POST", path, payload)

    def _get(self, path: str) -> Any:
        return self._request("GET", path)

    # -- endpoints ---------------------------------------------------------------

    def health(self) -> dict:
        """GET /healthz — liveness, protocol version, table names."""
        return self._get("/healthz")

    def state(self) -> "StateReport":
        """GET /v2/state — the durable-state report (journal, snapshot
        and recovery stats; ``enabled=False`` for in-memory servers)."""
        return parse_response(self._get("/v2/state"))

    def tables(self) -> TableList:
        """The server's catalog."""
        return parse_response(self._get("/v2/tables"))

    def characterize(self, where: str, table: str | None = None,
                     page: int = 1, page_size: int | None = None,
                     weights: Mapping | None = None,
                     options: Mapping | None = None) -> CharacterizeResponse:
        """Characterize one predicate synchronously."""
        request = CharacterizeRequest(
            where=where, table=table, client_id=self.client_id,
            page=page, page_size=page_size,
            weights=dict(weights or {}), options=dict(options or {}))
        return parse_response(self._post("/v2/characterize",
                                         request.to_dict()))

    def characterize_many(self, predicates: list[str] | tuple[str, ...],
                          table: str | None = None,
                          page_size: int | None = None,
                          options: Mapping | None = None) -> BatchResponse:
        """Characterize a batch of predicates in one round trip."""
        request = BatchRequest(
            predicates=tuple(predicates), table=table,
            client_id=self.client_id, page_size=page_size,
            options=dict(options or {}))
        return parse_response(self._post("/v2/batch", request.to_dict()))

    def views(self, page: int = 1,
              page_size: int | None = None) -> ViewPage:
        """Page through the current result's views."""
        request = ViewPageRequest(client_id=self.client_id, page=page,
                                  page_size=page_size)
        return parse_response(self._post("/v2/views", request.to_dict()))

    def configure(self, weights: Mapping | None = None,
                  options: Mapping | None = None) -> ConfigureResponse:
        """Adjust the server-side session's weights and options."""
        request = ConfigureRequest(client_id=self.client_id,
                                   weights=dict(weights or {}),
                                   options=dict(options or {}))
        return parse_response(self._post("/v2/configure", request.to_dict()))

    # -- jobs --------------------------------------------------------------------

    def submit(self, where: str, table: str | None = None,
               page_size: int | None = None,
               weights: Mapping | None = None,
               options: Mapping | None = None) -> JobSnapshot:
        """Queue an asynchronous characterization; returns the pending
        snapshot (carrying the job ID)."""
        request = JobSubmitRequest(request=CharacterizeRequest(
            where=where, table=table, client_id=self.client_id,
            page_size=page_size,
            weights=dict(weights or {}), options=dict(options or {})))
        return parse_response(self._post("/v2/jobs", request.to_dict()))

    def job(self, job_id: str) -> JobSnapshot:
        """Poll one job (status, timings, partial views, result)."""
        return parse_response(self._get(f"/v2/jobs/{job_id}"))

    def cancel(self, job_id: str) -> JobSnapshot:
        """Ask the server to cancel a job."""
        return parse_response(self._post(f"/v2/jobs/{job_id}/cancel", {}))

    def stream_events(self, job_id: str, timeout: float | None = None,
                      after: int = 0,
                      reconnects: int = 3) -> Iterator[JobEvent]:
        """Iterate a job's events as the server streams them (SSE).

        Yields :class:`JobEvent` objects in order — ``prepared``,
        ``component-scored``, one ``view-ranked`` per view *while the
        search is still running*, ``search-complete``, ``view-ready``,
        ``result`` — and finally the terminal ``done`` event (carrying
        ``{"status": ...}``), after which the iterator stops.  This
        replaces poll-based partial-view consumption::

            job = client.submit("gross > 2e8")
            for event in client.stream_events(job.job_id):
                if event.kind == "view-ready":
                    print(event.data["rank"], event.data["explanation"])

        The connection carries a ``Last-Event-ID`` cursor: when the
        socket is cut mid-job (server restart, proxy hiccup, eviction),
        the client reconnects up to ``reconnects`` times and resumes
        after the last sequence number it saw — no events duplicated or
        lost across the gap.  ``after`` starts the stream past an
        already-consumed prefix.  ``timeout`` bounds each socket read,
        not the whole stream; the server sends keep-alives, so the
        default is safe for long searches.
        """
        last_seq = max(0, int(after))
        attempts = 0
        while True:
            progressed = False
            try:
                for event in self._stream_once(job_id, last_seq, timeout):
                    last_seq = max(last_seq, event.seq)
                    progressed = True
                    yield event
                    if event.kind == JobEvent.DONE:
                        return
                # The stream ended (connection closed) without the
                # terminal "done" event: the server died or the socket
                # was cut mid-job.
                raise TransportError(
                    f"GET {self.base_url}/v2/jobs/{job_id}/events: event "
                    f"stream ended before the 'done' event "
                    f"(connection lost mid-job?)")
            except TransportError:
                # A truncated stream must never look like success, but
                # it is also the one failure Last-Event-ID exists for:
                # reconnect and resume after what was already consumed.
                if progressed:
                    attempts = 0
                if attempts >= max(0, reconnects):
                    raise
                attempts += 1
                time.sleep(min(0.2 * attempts, 1.0))

    def _stream_once(self, job_id: str, after: int,
                     timeout: float | None) -> Iterator[JobEvent]:
        """One SSE connection, resuming after sequence ``after``."""
        url = f"{self.base_url}/v2/jobs/{job_id}/events"
        headers = {"Accept": "text/event-stream"}
        if after > 0:
            headers["Last-Event-ID"] = str(after)
        request = urllib.request.Request(url, headers=headers)
        try:
            response = urllib.request.urlopen(
                request, timeout=timeout if timeout is not None
                else self.timeout)
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                decoded = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise TransportError(
                    f"GET {url}: non-JSON error (HTTP {exc.code})") from None
            if isinstance(decoded, Mapping) and decoded.get("type") == ApiError.TYPE:
                raise RemoteError(ApiError.from_dict(decoded),
                                  status=exc.code) from None
            raise TransportError(f"GET {url}: HTTP {exc.code}") from None
        except (urllib.error.URLError, OSError) as exc:
            raise TransportError(f"GET {url}: {exc}") from exc
        with response:
            seq, kind, data_lines = 0, None, []
            try:
                for raw in response:
                    line = raw.decode("utf-8").rstrip("\r\n")
                    if line.startswith(":"):
                        continue  # keep-alive / eviction comment
                    if line.startswith("id:"):
                        seq = int(line[len("id:"):].strip() or 0)
                        continue
                    if line.startswith("event:"):
                        kind = line[len("event:"):].strip()
                        continue
                    if line.startswith("data:"):
                        data_lines.append(line[len("data:"):].strip())
                        continue
                    if line == "" and kind is not None:
                        try:
                            data = json.loads("\n".join(data_lines) or "{}")
                        except json.JSONDecodeError as exc:
                            raise TransportError(
                                f"GET {url}: bad event data: {exc}") \
                                from None
                        yield JobEvent(seq=seq, kind=kind,
                                       data=data if isinstance(data, dict)
                                       else {"value": data})
                        if kind == JobEvent.DONE:
                            return
                        seq, kind, data_lines = 0, None, []
            except OSError as exc:
                raise TransportError(f"GET {url}: {exc}") from exc

    def wait(self, job_id: str, timeout: float = 60.0,
             poll: float = 0.05) -> JobSnapshot:
        """Poll until the job finishes; raises on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot.finished:
                return snapshot
            if time.monotonic() >= deadline:
                raise TransportError(
                    f"job {job_id} still {snapshot.status!r} "
                    f"after {timeout:.1f}s")
            time.sleep(poll)

    # -- legacy ------------------------------------------------------------------

    def legacy(self, action: dict) -> dict:
        """POST a v1 action dict to the compatibility endpoint."""
        return self._post("/v1", action)
