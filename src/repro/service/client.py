"""A Python client for the v2 HTTP service (stdlib ``urllib`` only).

Example::

    from repro.service.client import ZiggyClient

    client = ZiggyClient("http://127.0.0.1:8765")
    response = client.characterize("gross > 200000000", table="boxoffice")
    for view in response.views.items:
        print(view["explanation"])

    job = client.submit("budget > 50000000")
    snapshot = client.wait(job.job_id)
    print(snapshot.status, len(snapshot.result.views.items))
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Iterator, Mapping

from repro.errors import ServiceError
from repro.service.protocol import (
    ApiError,
    BatchRequest,
    BatchResponse,
    CharacterizeRequest,
    CharacterizeResponse,
    ConfigureRequest,
    ConfigureResponse,
    JobEvent,
    JobSnapshot,
    JobSubmitRequest,
    StateReport,
    TableList,
    ViewPage,
    ViewPageRequest,
    parse_response,
)


class RemoteError(ServiceError):
    """The server answered with a structured :class:`ApiError`."""

    def __init__(self, error: ApiError, status: int = 0):
        self.error = error
        self.code = error.code
        self.status = status
        super().__init__(f"[{error.code}] {error.message}")


class TransportError(ServiceError):
    """The server could not be reached or spoke something other than the
    protocol (connection refused, timeouts, non-JSON bodies)."""


class ZiggyClient:
    """Speaks protocol v2 to a :mod:`repro.service.server` endpoint.

    Args:
        base_url: e.g. ``"http://127.0.0.1:8765"`` (no trailing slash
            needed).
        timeout: per-request socket timeout in seconds.
        client_id: the session key sent with every stateful request.
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 client_id: str = "default"):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.client_id = client_id

    # -- transport ---------------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Mapping | None = None) -> Any:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers,
                                         method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                body = response.read()
                status = response.status
        except urllib.error.HTTPError as exc:
            body = exc.read()
            status = exc.code
        except (urllib.error.URLError, OSError) as exc:
            raise TransportError(f"{method} {url}: {exc}") from exc
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TransportError(
                f"{method} {url}: non-JSON response "
                f"(HTTP {status}): {exc}") from None
        if isinstance(decoded, Mapping) and decoded.get("ok") is False:
            if decoded.get("type") == ApiError.TYPE:
                raise RemoteError(ApiError.from_dict(decoded), status=status)
            # v1 endpoint errors are plain {"ok": False, "error": str}.
            raise RemoteError(ApiError(
                code=str(decoded.get("code", "error")),
                message=str(decoded.get("error", "request failed"))),
                status=status)
        return decoded

    def _post(self, path: str, payload: Mapping) -> Any:
        return self._request("POST", path, payload)

    def _get(self, path: str) -> Any:
        return self._request("GET", path)

    # -- endpoints ---------------------------------------------------------------

    def health(self) -> dict:
        """GET /healthz — liveness, protocol version, table names."""
        return self._get("/healthz")

    def state(self) -> "StateReport":
        """GET /v2/state — the durable-state report (journal, snapshot
        and recovery stats; ``enabled=False`` for in-memory servers)."""
        return parse_response(self._get("/v2/state"))

    def tables(self) -> TableList:
        """The server's catalog."""
        return parse_response(self._get("/v2/tables"))

    def characterize(self, where: str, table: str | None = None,
                     page: int = 1, page_size: int | None = None,
                     weights: Mapping | None = None,
                     options: Mapping | None = None) -> CharacterizeResponse:
        """Characterize one predicate synchronously."""
        request = CharacterizeRequest(
            where=where, table=table, client_id=self.client_id,
            page=page, page_size=page_size,
            weights=dict(weights or {}), options=dict(options or {}))
        return parse_response(self._post("/v2/characterize",
                                         request.to_dict()))

    def characterize_many(self, predicates: list[str] | tuple[str, ...],
                          table: str | None = None,
                          page_size: int | None = None,
                          options: Mapping | None = None) -> BatchResponse:
        """Characterize a batch of predicates in one round trip."""
        request = BatchRequest(
            predicates=tuple(predicates), table=table,
            client_id=self.client_id, page_size=page_size,
            options=dict(options or {}))
        return parse_response(self._post("/v2/batch", request.to_dict()))

    def views(self, page: int = 1,
              page_size: int | None = None) -> ViewPage:
        """Page through the current result's views."""
        request = ViewPageRequest(client_id=self.client_id, page=page,
                                  page_size=page_size)
        return parse_response(self._post("/v2/views", request.to_dict()))

    def configure(self, weights: Mapping | None = None,
                  options: Mapping | None = None) -> ConfigureResponse:
        """Adjust the server-side session's weights and options."""
        request = ConfigureRequest(client_id=self.client_id,
                                   weights=dict(weights or {}),
                                   options=dict(options or {}))
        return parse_response(self._post("/v2/configure", request.to_dict()))

    # -- jobs --------------------------------------------------------------------

    def submit(self, where: str, table: str | None = None,
               page_size: int | None = None,
               weights: Mapping | None = None,
               options: Mapping | None = None) -> JobSnapshot:
        """Queue an asynchronous characterization; returns the pending
        snapshot (carrying the job ID)."""
        request = JobSubmitRequest(request=CharacterizeRequest(
            where=where, table=table, client_id=self.client_id,
            page_size=page_size,
            weights=dict(weights or {}), options=dict(options or {})))
        return parse_response(self._post("/v2/jobs", request.to_dict()))

    def job(self, job_id: str) -> JobSnapshot:
        """Poll one job (status, timings, partial views, result)."""
        return parse_response(self._get(f"/v2/jobs/{job_id}"))

    def cancel(self, job_id: str) -> JobSnapshot:
        """Ask the server to cancel a job."""
        return parse_response(self._post(f"/v2/jobs/{job_id}/cancel", {}))

    def stream_events(self, job_id: str,
                      timeout: float | None = None) -> Iterator[JobEvent]:
        """Iterate a job's events as the server streams them (SSE).

        Yields :class:`JobEvent` objects in order — ``prepared``,
        ``component-scored``, one ``view-ranked`` per view *while the
        search is still running*, ``search-complete``, ``view-ready``,
        ``result`` — and finally the terminal ``done`` event (carrying
        ``{"status": ...}``), after which the iterator stops.  This
        replaces poll-based partial-view consumption::

            job = client.submit("gross > 2e8")
            for event in client.stream_events(job.job_id):
                if event.kind == "view-ready":
                    print(event.data["rank"], event.data["explanation"])

        ``timeout`` bounds each socket read, not the whole stream; the
        server sends keep-alives, so the default is safe for long
        searches.
        """
        url = f"{self.base_url}/v2/jobs/{job_id}/events"
        request = urllib.request.Request(
            url, headers={"Accept": "text/event-stream"})
        try:
            response = urllib.request.urlopen(
                request, timeout=timeout if timeout is not None
                else self.timeout)
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                decoded = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise TransportError(
                    f"GET {url}: non-JSON error (HTTP {exc.code})") from None
            if isinstance(decoded, Mapping) and decoded.get("type") == ApiError.TYPE:
                raise RemoteError(ApiError.from_dict(decoded),
                                  status=exc.code) from None
            raise TransportError(f"GET {url}: HTTP {exc.code}") from None
        except (urllib.error.URLError, OSError) as exc:
            raise TransportError(f"GET {url}: {exc}") from exc
        with response:
            seq, kind, data_lines = 0, None, []
            for raw in response:
                line = raw.decode("utf-8").rstrip("\r\n")
                if line.startswith(":"):
                    continue  # keep-alive comment
                if line.startswith("id:"):
                    seq = int(line[len("id:"):].strip() or 0)
                    continue
                if line.startswith("event:"):
                    kind = line[len("event:"):].strip()
                    continue
                if line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
                    continue
                if line == "" and kind is not None:
                    try:
                        data = json.loads("\n".join(data_lines) or "{}")
                    except json.JSONDecodeError as exc:
                        raise TransportError(
                            f"GET {url}: bad event data: {exc}") from None
                    event = JobEvent(seq=seq, kind=kind,
                                     data=data if isinstance(data, dict)
                                     else {"value": data})
                    yield event
                    if event.kind == JobEvent.DONE:
                        return
                    seq, kind, data_lines = 0, None, []
        # The stream ended (connection closed) without the terminal
        # "done" event: the server died or the socket was cut mid-job.
        # Surface it — a truncated stream must never look like success.
        raise TransportError(
            f"GET {url}: event stream ended before the 'done' event "
            f"(connection lost mid-job?)")

    def wait(self, job_id: str, timeout: float = 60.0,
             poll: float = 0.05) -> JobSnapshot:
        """Poll until the job finishes; raises on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot.finished:
                return snapshot
            if time.monotonic() >= deadline:
                raise TransportError(
                    f"job {job_id} still {snapshot.status!r} "
                    f"after {timeout:.1f}s")
            time.sleep(poll)

    # -- legacy ------------------------------------------------------------------

    def legacy(self, action: dict) -> dict:
        """POST a v1 action dict to the compatibility endpoint."""
        return self._post("/v1", action)
