"""The service subsystem: protocol v2, jobs, the service facade, HTTP.

Layering (each layer only knows the one below it)::

    server.py / client.py      HTTP veneer (stdlib http.server / urllib)
    service.py                 ZiggyService: sessions, batches, jobs
    jobs.py                    JobManager: thread pool + job lifecycle
    protocol.py                typed request/response messages (v2)
    ...                        repro.app.session / repro.core.pipeline

The legacy dict API (:class:`repro.app.api.ZiggyApi`) is a thin adapter
that translates v1 action dicts onto this subsystem.
"""

from repro.service.jobs import JOB_STATES, Job, JobManager
from repro.service.protocol import (
    DEFAULT_PAGE_SIZE,
    PROTOCOL_VERSION,
    ApiError,
    BatchRequest,
    BatchResponse,
    CharacterizeRequest,
    CharacterizeResponse,
    ConfigureRequest,
    ConfigureResponse,
    ErrorCode,
    JobControlRequest,
    JobEvent,
    JobSnapshot,
    JobSubmitRequest,
    StateReport,
    StateRequest,
    TableInfo,
    TableList,
    TablesRequest,
    ViewPage,
    ViewPageRequest,
    job_event_from_stage,
    json_safe,
    parse_request,
    parse_response,
)
from repro.service.service import ZiggyService

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_PAGE_SIZE",
    "ErrorCode",
    "ApiError",
    "CharacterizeRequest",
    "BatchRequest",
    "ViewPageRequest",
    "JobSubmitRequest",
    "JobControlRequest",
    "StateRequest",
    "StateReport",
    "TablesRequest",
    "ConfigureRequest",
    "CharacterizeResponse",
    "BatchResponse",
    "ViewPage",
    "JobSnapshot",
    "JobEvent",
    "job_event_from_stage",
    "TableInfo",
    "TableList",
    "ConfigureResponse",
    "json_safe",
    "parse_request",
    "parse_response",
    "Job",
    "JobManager",
    "JOB_STATES",
    "ZiggyService",
]
