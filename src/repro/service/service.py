"""`ZiggyService` — the session-owning, job-running service facade.

This is the object a deployment holds: it owns the shared
:class:`Database`, one :class:`ZiggySession` per client ID (each with its
own configuration and history), and a :class:`JobManager` for
asynchronous characterizations.  Everything it speaks is the typed
protocol of :mod:`repro.service.protocol`; the HTTP server and the v1
compatibility adapter are both thin shells around it.

Cross-request state is **borrowed from the runtime**, not owned: every
session's per-table statistics cache comes from the
:class:`~repro.runtime.ZiggyRuntime`'s shared registry, so two clients
characterizing predicates on the same table share one global-statistics
computation, and the runtime's table store bounds how much derived state
stays resident.

Sessions are serialized per client with a lock (a session's history and
configuration are single-threaded state), so concurrent requests for
*different* clients run in parallel — sharing the thread-safe statistics
caches — while requests for the *same* client queue up.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, Mapping

from repro.app.session import SessionEntry, ZiggySession
from repro.core.config import ZiggyConfig
from repro.core.profiling import PROFILER
from repro.core.views import CharacterizationResult
from repro.engine.database import Database
from repro.engine.table import Table
from repro.errors import (
    JobCancelled,
    NoActiveQueryError,
    ProtocolError,
    ReproError,
)
from repro.persistence.state import DurableState
from repro.runtime import (
    BatchGroup,
    CharacterizationTask,
    Executor,
    ZiggyRuntime,
    create_executor,
    get_runtime,
    plan_batch,
)
from repro.service.jobs import Job, JobManager
from repro.service.protocol import (
    ApiError,
    BatchRequest,
    BatchResponse,
    CharacterizeRequest,
    CharacterizeResponse,
    ConfigureRequest,
    ConfigureResponse,
    JobControlRequest,
    JobEvent,
    JobSnapshot,
    JobSubmitRequest,
    StateReport,
    StateRequest,
    TableInfo,
    TableList,
    TablesRequest,
    ViewPage,
    ViewPageRequest,
    job_event_from_stage,
    parse_request,
    view_to_dict,
)


class ZiggyService:
    """The v2 service: sessions keyed by client ID, batches, jobs.

    Args:
        database: shared catalog; tables registered here are visible to
            every client session.
        config: default configuration new sessions start from.
        max_workers: worker count for the job executor backend
            (thread-pool size, or shard count for ``process``).
        runtime: the shared runtime to borrow cross-request state from;
            defaults to the process-wide one, so several services in one
            process (or a service plus library sessions) share per-table
            statistics.
        executor: the job execution backend — an
            :class:`~repro.runtime.Executor` instance or one of the
            names ``"inline"`` / ``"thread"`` / ``"process"`` (see
            ``docs/executors.md``).  The service takes ownership and
            closes it on :meth:`shutdown`.  With ``"process"``, **all**
            characterization work — synchronous calls, batches and
            asynchronous jobs alike — runs in worker processes sharded
            by table fingerprint, so every endpoint behaves identically
            across backends.
        max_restarts: respawn budget per dead worker shard (``process``
            backend only; see ``docs/executors.md`` failure semantics).
        max_retries: re-execution budget per in-flight task after a
            worker death (``process`` backend only).
        state_dir: directory for durable state (job journal + warm-cache
            snapshots; see ``docs/persistence.md``).  None (the default)
            keeps the service fully in-memory.  Call :meth:`recover`
            after registering the catalog to replay a previous run's
            journal.
        persistence: a pre-built :class:`~repro.persistence.DurableState`
            (mutually exclusive with ``state_dir``); the service adopts
            it and closes it on :meth:`shutdown`.
        snapshot_interval: seconds between background warm-cache
            snapshot passes (0 disables the cadence; drain-time
            snapshots still happen).  Only meaningful with a state dir.
        fsync: journal fsync policy (``never`` / ``rotate`` / ``always``
            — the durability matrix lives in ``docs/persistence.md``).
    """

    #: Distinguishes service instances in the registry's borrower ledger
    #: (two services sharing one runtime are distinct borrowers even for
    #: equal client IDs).
    _instances = itertools.count(1)

    def __init__(self, database: Database | None = None,
                 config: ZiggyConfig | None = None,
                 max_workers: int = 2,
                 runtime: ZiggyRuntime | None = None,
                 executor: "str | Executor" = "thread",
                 max_restarts: int | None = None,
                 max_retries: int | None = None,
                 state_dir: str | None = None,
                 persistence: DurableState | None = None,
                 snapshot_interval: float | None = None,
                 fsync: str | None = None):
        self.database = database if database is not None else Database()
        self.config = config
        self.runtime = runtime if runtime is not None else get_runtime()
        self._instance = f"svc-{next(self._instances)}"
        self.started_at = time.time()
        if persistence is not None and state_dir is not None:
            raise ProtocolError(
                "pass either state_dir or a pre-built persistence object, "
                "not both")
        if persistence is None and state_dir is not None:
            kwargs: dict[str, Any] = {}
            if snapshot_interval is not None:
                kwargs["snapshot_interval"] = snapshot_interval
            if fsync is not None:
                kwargs["fsync"] = fsync
            persistence = DurableState(state_dir, **kwargs)
        self.state = persistence
        if isinstance(executor, str):
            executor = create_executor(executor, workers=max_workers,
                                       runtime=self.runtime,
                                       max_restarts=max_restarts,
                                       max_retries=max_retries)
        self.executor = executor
        self.jobs = JobManager(backend=executor,
                               journal=(persistence.journal
                                        if persistence is not None else None))
        if persistence is not None:
            persistence.attach(self.runtime, self.jobs)
        self._sessions: dict[str, ZiggySession] = {}
        self._locks: dict[str, threading.Lock] = {}
        self._registry_lock = threading.Lock()
        # A pre-populated catalog must reach the backend too (process
        # shards only execute tables they have been shipped).
        for table_name in self.database.table_names():
            self._share_table(self.database.table(table_name),
                              name=table_name)

    # -- catalog / sessions -------------------------------------------------------

    def register_table(self, table: Table, name: str | None = None) -> None:
        """Add a dataset to the shared catalog, the runtime store, and
        the executor backend (process shards receive it by value).

        With durable state attached, a warm-cache snapshot matching the
        table's content fingerprint is restored first: merged into the
        shared registry (so coordinator-side queries skip preparation)
        and shipped with the executor registration (so worker shards —
        and their future respawns — start warm too).
        """
        self.database.register(table, name=name)
        self._share_table(table, name=name)

    def _share_table(self, table: Table, name: str | None = None) -> None:
        """Runtime + executor registration, with snapshot warm restore.

        The snapshot (if any) is merged *before* registration so a
        restored sketch short-circuits the registration-time sketch
        build instead of racing it."""
        snapshot = None
        if self.state is not None:
            fingerprint = table.fingerprint()
            self.state.note_table(name or table.name, fingerprint)
            snapshot = self.state.snapshots.load(fingerprint)
            if snapshot is not None:
                self.runtime.stats.warm(table, snapshot=snapshot)
        self.runtime.register_table(table, name=name)
        self.executor.register_table(table, name=name, cache=snapshot)

    def session(self, client_id: str = "default") -> ZiggySession:
        """The session for one client, created on first use."""
        with self._registry_lock:
            session = self._sessions.get(client_id)
            if session is None:
                session = ZiggySession(database=self.database,
                                       config=self.config,
                                       runtime=self.runtime,
                                       client_id=f"{client_id}@{self._instance}")
                self._sessions[client_id] = session
                self._locks[client_id] = threading.Lock()
            return session

    def attach_session(self, client_id: str, session: ZiggySession) -> None:
        """Adopt an externally built session under a client ID (used by
        the v1 adapter, which predates client IDs)."""
        with self._registry_lock:
            self._sessions[client_id] = session
            self._locks.setdefault(client_id, threading.Lock())

    def _session_lock(self, client_id: str) -> threading.Lock:
        self.session(client_id)  # ensure it exists
        with self._registry_lock:
            return self._locks[client_id]

    def client_ids(self) -> tuple[str, ...]:
        """The known client IDs."""
        with self._registry_lock:
            return tuple(self._sessions)

    # -- typed operations ---------------------------------------------------------

    def list_tables(self, request: TablesRequest | None = None) -> TableList:
        """The catalog, as protocol objects."""
        infos = []
        for name in self.database.table_names():
            table = self.database.table(name)
            infos.append(TableInfo(name=name, rows=table.n_rows,
                                   columns=table.n_columns,
                                   column_names=tuple(table.column_names)))
        return TableList(tables=tuple(infos))

    def characterize(self, request: CharacterizeRequest,
                     progress: Callable[[str, Any], None] | None = None
                     ) -> CharacterizeResponse:
        """Run one characterization synchronously **through the
        configured executor backend**.

        Inline, thread and process backends behave identically for this
        endpoint: on a local backend the work is the same session
        closure as before; on the process backend the request is routed
        to the shard that owns the table's fingerprint — so synchronous
        calls warm (and profit from) the *same* per-shard statistics
        caches as jobs and batches, instead of silently computing on
        the coordinator.
        """
        if self.executor.supports_callables:
            return self._execute_sync(
                lambda p: self._characterize_local(request, progress=p),
                progress=progress)
        task, result_mapper = self._task_for(request)
        return self._execute_sync(task, progress=progress,
                                  result_mapper=result_mapper)

    def _characterize_local(self, request: CharacterizeRequest,
                            progress: Callable[[str, Any], None] | None = None
                            ) -> CharacterizeResponse:
        """The in-process session path (what local backends execute)."""
        session = self.session(request.client_id)
        with self._session_lock(request.client_id):
            self._apply_overrides(session, request.weights, request.options)
            table_name = session.resolve_table(request.table)
            result = session.run(request.where, table=table_name,
                                 progress=progress)
        return CharacterizeResponse.from_result(
            result, table=table_name,
            page=request.page, page_size=request.page_size)

    def _execute_sync(self, unit, *,
                      progress: Callable[[str, Any], None] | None = None,
                      result_mapper: Callable[[Any], Any] | None = None):
        """Run one unit of work on the backend and block for its outcome.

        The backend's ``finish`` contract guarantees exactly one
        terminal callback, so this wait cannot dangle: a worker death is
        either healed (respawn + retry) or surfaced as the error below.
        """
        outcome: dict[str, Any] = {}
        done = threading.Event()

        def relay(stage: str, payload: Any) -> None:
            if progress is not None:
                progress(stage, payload)

        def finish(status: str, result: Any,
                   error: BaseException | None) -> None:
            outcome["terminal"] = (status, result, error)
            done.set()

        self.executor.submit(unit, begin=lambda: None, progress=relay,
                             finish=finish)
        done.wait()
        status, result, error = outcome["terminal"]
        if status == "failed":
            raise error
        if status == "cancelled":
            raise JobCancelled("synchronous request was cancelled")
        return result_mapper(result) if result_mapper is not None else result

    def characterize_many(self, request: BatchRequest,
                          progress: Callable[[str, Any], None] | None = None
                          ) -> BatchResponse:
        """Run a batch through the shard-aware batch scheduler.

        Entries are grouped by owning table (:func:`plan_batch`), so
        each table's predicates run back-to-back against one warm
        :class:`StatsCache` — one cold preparation per table, never
        interleaved cold submissions.  On the process backend each
        group is one serializable batch task routed to the shard owning
        the table's fingerprint, and groups for different shards run
        concurrently.  Results return in submission order; the response
        reports the cache counters as evidence of the sharing (local
        backends only — shard caches live in other processes).
        """
        session = self.session(request.client_id)
        entries = request.entries()
        t0 = time.perf_counter()
        with self._session_lock(request.client_id):
            self._apply_overrides(session, {}, request.options)
            resolved = [session.resolve_table(table) for table, _ in entries]
            effective_config = session.config
        keyed = [(table_name, self.database.table(table_name).fingerprint(),
                  where)
                 for table_name, (_, where) in zip(resolved, entries)]
        groups = plan_batch(keyed)
        if self.executor.supports_callables:
            results, hits, misses = self._run_groups_local(
                session, request, groups, progress)
        else:
            results = self._run_groups_sharded(
                session, request, groups, effective_config, progress)
            hits = misses = None  # the shards' caches are not ours to read
        total_ms = (time.perf_counter() - t0) * 1000.0
        responses = []
        for position, result in enumerate(results):
            table_name = keyed[position][0]
            responses.append(CharacterizeResponse.from_result(
                result, table=table_name, page_size=request.page_size))
        return BatchResponse(results=tuple(responses), total_time_ms=total_ms,
                             cache_hits=hits, cache_misses=misses)

    def _run_groups_local(self, session: ZiggySession, request: BatchRequest,
                          groups: "list[BatchGroup]", progress
                          ) -> "tuple[list, int | None, int | None]":
        """Execute batch groups on the session (local backends)."""
        results: list[Any] = [None] * sum(len(g.indices) for g in groups)
        hits: "int | None" = 0
        misses: "int | None" = 0
        with self._session_lock(request.client_id):
            for group in groups:
                cache = session.engine_for(group.table).cache
                # Snapshot so the response reports THIS batch's
                # hits/misses, not the engine's lifetime totals.
                hits_before = cache.counters.hits if cache is not None else 0
                misses_before = (cache.counters.misses
                                 if cache is not None else 0)
                group_results = session.run_many(
                    group.wheres, table=group.table,
                    progress=self._group_progress(group, progress))
                for local, result in enumerate(group_results):
                    results[group.indices[local]] = result
                if cache is None:
                    hits = misses = None
                elif hits is not None and misses is not None:
                    hits += cache.counters.hits - hits_before
                    misses += cache.counters.misses - misses_before
            # ``run_many`` appended history in group-execution order;
            # restore submission order so every backend records the
            # same session history for the same batch.
            tail = session.history[-len(results):]
            positions = [position for group in groups
                         for position in group.indices]
            reordered = list(tail)
            for entry, position in zip(tail, positions):
                reordered[position] = entry
            session.history[-len(results):] = reordered
        return results, hits, misses

    def _run_groups_sharded(self, session: ZiggySession,
                            request: BatchRequest,
                            groups: "list[BatchGroup]", config, progress
                            ) -> list:
        """Execute batch groups as concurrent shard-routed batch tasks."""
        waiters = []
        for group in groups:
            outcome: dict[str, Any] = {}
            done = threading.Event()

            def finish(status, result, error, _outcome=outcome, _done=done):
                _outcome["terminal"] = (status, result, error)
                _done.set()

            self.executor.submit(
                CharacterizationTask(
                    table=group.table, where=group.wheres[0],
                    wheres=group.wheres, fingerprint=group.routing_key,
                    config=config,
                    client_id=f"{request.client_id}@{self._instance}"),
                begin=lambda: None,
                progress=self._group_progress(group, progress),
                finish=finish)
            waiters.append((group, outcome, done))
        failure: BaseException | None = None
        results: list[Any] = [None] * sum(len(g.indices) for g in groups)
        for group, outcome, done in waiters:
            done.wait()
            status, group_results, error = outcome["terminal"]
            if status == "failed" and failure is None:
                failure = error
            elif status == "cancelled" and failure is None:
                failure = JobCancelled("batch group was cancelled")
            elif status == "done":
                for local, result in enumerate(group_results):
                    results[group.indices[local]] = result
        if failure is not None:
            raise failure
        # Reconcile the shards' raw results into the session exactly as
        # a local run would have: history entries in submission order.
        order = sorted(
            ((group.indices[local], group, where, result)
             for group, outcome, _ in waiters
             for local, (where, result) in enumerate(
                 zip(group.wheres, outcome["terminal"][1]))),
            key=lambda item: item[0])
        with self._session_lock(request.client_id):
            for _, group, where, result in order:
                selection = self.database.select(group.table, where)
                session.history.append(SessionEntry(
                    query_text=where, table_name=group.table,
                    result=result, selection=selection))
        return results

    @staticmethod
    def _group_progress(group: "BatchGroup", progress):
        """Remap a group's ``batch_item`` indices to batch positions."""
        if progress is None:
            return None

        def relay(stage: str, payload: Any) -> None:
            if stage == "batch_item" and isinstance(payload, tuple) \
                    and len(payload) == 2:
                local, result = payload
                progress(stage, (group.indices[int(local)], result))
            else:
                progress(stage, payload)

        return relay

    def submit(self, request: JobSubmitRequest | CharacterizeRequest,
               on_progress: Callable[[str, Any], None] | None = None
               ) -> JobSnapshot:
        """Queue a characterization as an asynchronous job.

        Returns the initial (``pending``) snapshot; poll with
        :meth:`job_status` and stop with :meth:`cancel`.

        On a callable-capable backend (inline/thread) the job is the
        same closure as a synchronous :meth:`characterize`.  On a
        process backend the request is distilled into a serializable
        :class:`~repro.runtime.CharacterizationTask` routed to the shard
        that owns the table's fingerprint; the worker's raw pipeline
        result is mapped back into a wire response — and into the
        client's session history — when it returns.
        """
        inner = (request.request if isinstance(request, JobSubmitRequest)
                 else request)
        job_id = self._submit_request(inner, on_progress=on_progress)
        return self._snapshot(self.jobs.get(job_id))

    def _submit_request(self, inner: CharacterizeRequest,
                        on_progress: Callable[[str, Any], None] | None = None,
                        job_id: str | None = None) -> str:
        """Queue one characterize request as a job (fresh or resumed).

        The request's wire form rides along as the journal payload, so a
        coordinator restart can re-execute it; ``job_id`` re-attaches
        the work to a journal-restored record (see :meth:`resume_job`).
        """
        if self.jobs.backend.supports_callables:
            # The closure runs the *local* session path directly: the
            # job already occupies a backend worker, so routing it back
            # through ``characterize`` would double-submit (and starve
            # a one-worker pool).
            return self.jobs.submit(
                lambda progress: self._characterize_local(
                    inner, progress=progress),
                on_progress=on_progress,
                # Events enter the log already in wire form: the log then
                # holds small JSON-able dicts, not pipeline artifacts that
                # would pin slices and tables for the job's lifetime.
                event_mapper=job_event_from_stage,
                journal_payload=inner.to_dict(),
                job_id=job_id)
        task, result_mapper = self._task_for(inner)
        return self.jobs.submit(
            task=task,
            on_progress=on_progress,
            event_mapper=job_event_from_stage,
            result_mapper=result_mapper,
            journal_payload=inner.to_dict(),
            job_id=job_id)

    def resume_job(self, job_id: str, request: CharacterizeRequest) -> str:
        """Re-submit a journal-restored job under its original id.

        Called by the recovery orchestrator (``--recover resume``) after
        :meth:`JobManager.adopt` restored the record; the re-run's
        events append after the journaled ones, so streaming cursors
        stay monotonic across the restart.
        """
        return self._submit_request(request, job_id=job_id)

    def recover(self, policy: str = "resume"):
        """Replay the journal of this service's state directory.

        Returns the :class:`~repro.persistence.RecoveryReport` (or None
        when the service has no durable state).  Call once at boot,
        after the catalog is registered — ``repro serve`` does.
        """
        if self.state is None:
            return None
        from repro.persistence.recovery import recover_jobs
        return recover_jobs(self, self.state, policy=policy)

    def _task_for(self, inner: CharacterizeRequest
                  ) -> "tuple[CharacterizationTask, Callable[[Any], Any]]":
        """Distill a request into a serializable task plus the mapper
        that reconciles the shard's raw result back into the session."""
        session = self.session(inner.client_id)
        with self._session_lock(inner.client_id):
            # Same session semantics as the local path: request
            # overrides apply to the session, then the effective config
            # travels with the task.
            self._apply_overrides(session, inner.weights, inner.options)
            table_name = session.resolve_table(inner.table)
            effective_config = session.config
        table = self.database.table(table_name)

        def result_mapper(result: CharacterizationResult
                          ) -> CharacterizeResponse:
            # Runs when the shard reports done: record history (so
            # views/detail panels work exactly as after a local run) and
            # produce the wire response.  The selection re-evaluates
            # *before* taking the session lock, so a concurrent request
            # for the same client is never blocked behind the scan.
            selection = self.database.select(table_name, inner.where)
            with self._session_lock(inner.client_id):
                session.history.append(SessionEntry(
                    query_text=inner.where, table_name=table_name,
                    result=result, selection=selection))
            return CharacterizeResponse.from_result(
                result, table=table_name,
                page=inner.page, page_size=inner.page_size)

        task = CharacterizationTask(
            table=table_name,
            where=inner.where,
            fingerprint=table.fingerprint(),
            config=effective_config,
            client_id=f"{inner.client_id}@{self._instance}")
        return task, result_mapper

    @property
    def uptime_seconds(self) -> float:
        """Seconds since this service object was constructed."""
        return time.time() - self.started_at

    def state_report(self, request: StateRequest | None = None) -> StateReport:
        """Durable-state health: journal, snapshots, recovery, runtime.

        Answers for in-memory services too (``enabled=False`` with the
        runtime/jobs sections still filled), so ``GET /v2/state`` is
        always a valid probe.
        """
        by_status: dict[str, int] = {}
        for job_id in self.jobs.job_ids():
            try:
                status = self.jobs.get(job_id).status
            except ReproError:
                continue
            by_status[status] = by_status.get(status, 0) + 1
        jobs = {"live": sum(by_status.values()), "by_status": by_status,
                "journal_errors": self.jobs.journal_errors}
        profile = PROFILER.snapshot()
        if self.state is None:
            return StateReport(enabled=False,
                               uptime_seconds=self.uptime_seconds,
                               runtime=self.runtime.stats_snapshot(),
                               jobs=jobs,
                               profile=profile)
        stats = self.state.stats()
        return StateReport(
            enabled=True,
            state_dir=stats["state_dir"],
            uptime_seconds=self.uptime_seconds,
            journal=stats["journal"],
            snapshots=stats["snapshots"],
            recovery=stats["recovery"],
            runtime=self.runtime.stats_snapshot(),
            jobs=jobs,
            profile=profile,
        )

    def job_status(self, job_id: str) -> JobSnapshot:
        """A point-in-time snapshot of one job (with partial views)."""
        return self._snapshot(self.jobs.get(job_id))

    def cancel(self, job_id: str) -> JobSnapshot:
        """Request cancellation and return the resulting snapshot."""
        return self._snapshot(self.jobs.cancel(job_id))

    def wait(self, job_id: str, timeout: float | None = None) -> JobSnapshot:
        """Block until a job finishes (used by tests and simple clients)."""
        return self._snapshot(self.jobs.wait(job_id, timeout=timeout))

    def job_events(self, job_id: str, after_seq: int = 0,
                   timeout: float | None = None
                   ) -> tuple[list[JobEvent], bool]:
        """Typed wire events of a job after ``after_seq``.

        Blocks until events arrive, the job finishes, or ``timeout``
        elapses; returns ``(events, finished)``.  This is the
        long-poll/stream primitive behind ``GET /v2/jobs/<id>/events``.
        """
        raw, finished = self.jobs.events_since(job_id, after_seq=after_seq,
                                               timeout=timeout)
        # Payloads were serialized at record time (see submit), so this
        # is a plain unwrap.
        return [event for _seq, _stage, event in raw], finished

    def watch_job(self, job_id: str, callback: Callable[[], None]
                  ) -> Callable[[], None]:
        """Register a non-blocking wakeup callback on a job's event log
        (see :meth:`JobManager.watch`); returns the unregister callable.

        The async front-end uses this instead of parking a thread per
        subscriber in :meth:`job_events`.
        """
        return self.jobs.watch(job_id, callback)

    def view_page(self, request: ViewPageRequest) -> ViewPage:
        """Page through the client's current (latest) result."""
        session = self.session(request.client_id)
        with self._session_lock(request.client_id):
            if not session.history:
                raise NoActiveQueryError(request.client_id)
            views = session.current.result.views
            return ViewPage.from_views(views, page=request.page,
                                       page_size=request.page_size)

    def configure(self, request: ConfigureRequest) -> ConfigureResponse:
        """Apply weight/option overrides to the client's session."""
        session = self.session(request.client_id)
        with self._session_lock(request.client_id):
            self._apply_overrides(session, request.weights, request.options)
            weights = dict(session.config.weights)
        applied = tuple(sorted(request.options))
        return ConfigureResponse(weights=weights, applied=applied)

    # -- panels (used by the v1 adapter) -----------------------------------------

    def view_detail(self, client_id: str, rank: int) -> str:
        """The rendered detail panel for one view of the current result."""
        session = self.session(client_id)
        with self._session_lock(client_id):
            if not session.history:
                raise NoActiveQueryError(client_id)
            return session.view_detail(rank)

    def dendrogram(self, client_id: str) -> str:
        """The current result's dendrogram rendering."""
        session = self.session(client_id)
        with self._session_lock(client_id):
            if not session.history:
                raise NoActiveQueryError(client_id)
            return session.dendrogram()

    # -- dict dispatch (what the HTTP server calls) ------------------------------

    def dispatch(self, payload: Mapping) -> dict:
        """Handle one decoded JSON request; never raises.

        Parses the payload into a typed request, executes it, and returns
        the response dict — or an :class:`ApiError` dict on failure.
        """
        try:
            request = parse_request(payload)
            if isinstance(request, CharacterizeRequest):
                return self.characterize(request).to_dict()
            if isinstance(request, BatchRequest):
                return self.characterize_many(request).to_dict()
            if isinstance(request, ViewPageRequest):
                return self.view_page(request).to_dict()
            if isinstance(request, JobSubmitRequest):
                return self.submit(request).to_dict()
            if isinstance(request, JobControlRequest):
                if request.op == "cancel":
                    return self.cancel(request.job_id).to_dict()
                return self.job_status(request.job_id).to_dict()
            if isinstance(request, TablesRequest):
                return self.list_tables(request).to_dict()
            if isinstance(request, ConfigureRequest):
                return self.configure(request).to_dict()
            if isinstance(request, StateRequest):
                return self.state_report(request).to_dict()
            raise ProtocolError(
                f"unhandled request type {type(request).__name__}")
        except ReproError as exc:
            return ApiError.from_exception(exc).to_dict()
        except (ValueError, TypeError, KeyError) as exc:
            return ApiError.from_exception(
                ProtocolError(f"{type(exc).__name__}: {exc}")).to_dict()
        except Exception as exc:  # noqa: BLE001 - a service must not 500
            return ApiError.from_exception(exc).to_dict()

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _apply_overrides(session: ZiggySession, weights: Mapping,
                         options: Mapping) -> None:
        if weights:
            session.set_weights(**{str(k): float(v)
                                   for k, v in weights.items()})
        if options:
            session.set_option(**dict(options))

    def _snapshot(self, job: Job) -> JobSnapshot:
        with job.lock:
            status = job.status
            timings = job.timings_ms()
            partial = list(job.partial)
            result = job.result
            error = job.error
        partial_views = tuple(view_to_dict(v, rank)
                              for rank, v in enumerate(partial, start=1))
        return JobSnapshot(
            job_id=job.job_id,
            status=status,
            timings_ms=timings,
            partial_views=partial_views,
            result=result if isinstance(result, CharacterizeResponse) else None,
            error=(ApiError.from_exception(error)
                   if error is not None else None),
        )

    def shutdown(self, wait: bool = True) -> None:
        """Stop the job pool (the catalog and sessions stay usable).

        With durable state attached the order is deliberate: the job
        manager flushes the journal *before* the backend drains (tail
        events already acknowledged to SSE clients are on disk even if
        the drain wedges), and after the drain the durable state does
        its final snapshot pass, compacts the journal down to the live
        job table, and closes it — a clean stop leaves a warm, compact
        state directory.
        """
        self.jobs.shutdown(wait=wait)
        if self.state is not None:
            self.state.close()
