"""`ZiggyService` — the session-owning, job-running service facade.

This is the object a deployment holds: it owns the shared
:class:`Database`, one :class:`ZiggySession` per client ID (each with its
own configuration and history), and a :class:`JobManager` for
asynchronous characterizations.  Everything it speaks is the typed
protocol of :mod:`repro.service.protocol`; the HTTP server and the v1
compatibility adapter are both thin shells around it.

Cross-request state is **borrowed from the runtime**, not owned: every
session's per-table statistics cache comes from the
:class:`~repro.runtime.ZiggyRuntime`'s shared registry, so two clients
characterizing predicates on the same table share one global-statistics
computation, and the runtime's table store bounds how much derived state
stays resident.

Sessions are serialized per client with a lock (a session's history and
configuration are single-threaded state), so concurrent requests for
*different* clients run in parallel — sharing the thread-safe statistics
caches — while requests for the *same* client queue up.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, Mapping

from repro.app.session import ZiggySession
from repro.core.config import ZiggyConfig
from repro.engine.database import Database
from repro.engine.table import Table
from repro.errors import (
    NoActiveQueryError,
    ProtocolError,
    ReproError,
)
from repro.runtime import ZiggyRuntime, get_runtime
from repro.service.jobs import Job, JobManager
from repro.service.protocol import (
    ApiError,
    BatchRequest,
    BatchResponse,
    CharacterizeRequest,
    CharacterizeResponse,
    ConfigureRequest,
    ConfigureResponse,
    JobControlRequest,
    JobEvent,
    JobSnapshot,
    JobSubmitRequest,
    TableInfo,
    TableList,
    TablesRequest,
    ViewPage,
    ViewPageRequest,
    job_event_from_stage,
    parse_request,
    view_to_dict,
)


class ZiggyService:
    """The v2 service: sessions keyed by client ID, batches, jobs.

    Args:
        database: shared catalog; tables registered here are visible to
            every client session.
        config: default configuration new sessions start from.
        max_workers: thread-pool size for asynchronous jobs.
        runtime: the shared runtime to borrow cross-request state from;
            defaults to the process-wide one, so several services in one
            process (or a service plus library sessions) share per-table
            statistics.
    """

    #: Distinguishes service instances in the registry's borrower ledger
    #: (two services sharing one runtime are distinct borrowers even for
    #: equal client IDs).
    _instances = itertools.count(1)

    def __init__(self, database: Database | None = None,
                 config: ZiggyConfig | None = None,
                 max_workers: int = 2,
                 runtime: ZiggyRuntime | None = None):
        self.database = database if database is not None else Database()
        self.config = config
        self.runtime = runtime if runtime is not None else get_runtime()
        self._instance = f"svc-{next(self._instances)}"
        self.jobs = JobManager(max_workers=max_workers)
        self._sessions: dict[str, ZiggySession] = {}
        self._locks: dict[str, threading.Lock] = {}
        self._registry_lock = threading.Lock()

    # -- catalog / sessions -------------------------------------------------------

    def register_table(self, table: Table, name: str | None = None) -> None:
        """Add a dataset to the shared catalog (and the runtime store)."""
        self.database.register(table, name=name)
        self.runtime.register_table(table, name=name)

    def session(self, client_id: str = "default") -> ZiggySession:
        """The session for one client, created on first use."""
        with self._registry_lock:
            session = self._sessions.get(client_id)
            if session is None:
                session = ZiggySession(database=self.database,
                                       config=self.config,
                                       runtime=self.runtime,
                                       client_id=f"{client_id}@{self._instance}")
                self._sessions[client_id] = session
                self._locks[client_id] = threading.Lock()
            return session

    def attach_session(self, client_id: str, session: ZiggySession) -> None:
        """Adopt an externally built session under a client ID (used by
        the v1 adapter, which predates client IDs)."""
        with self._registry_lock:
            self._sessions[client_id] = session
            self._locks.setdefault(client_id, threading.Lock())

    def _session_lock(self, client_id: str) -> threading.Lock:
        self.session(client_id)  # ensure it exists
        with self._registry_lock:
            return self._locks[client_id]

    def client_ids(self) -> tuple[str, ...]:
        """The known client IDs."""
        with self._registry_lock:
            return tuple(self._sessions)

    # -- typed operations ---------------------------------------------------------

    def list_tables(self, request: TablesRequest | None = None) -> TableList:
        """The catalog, as protocol objects."""
        infos = []
        for name in self.database.table_names():
            table = self.database.table(name)
            infos.append(TableInfo(name=name, rows=table.n_rows,
                                   columns=table.n_columns,
                                   column_names=tuple(table.column_names)))
        return TableList(tables=tuple(infos))

    def characterize(self, request: CharacterizeRequest,
                     progress: Callable[[str, Any], None] | None = None
                     ) -> CharacterizeResponse:
        """Run one characterization synchronously."""
        session = self.session(request.client_id)
        with self._session_lock(request.client_id):
            self._apply_overrides(session, request.weights, request.options)
            table_name = session.resolve_table(request.table)
            result = session.run(request.where, table=table_name,
                                 progress=progress)
        return CharacterizeResponse.from_result(
            result, table=table_name,
            page=request.page, page_size=request.page_size)

    def characterize_many(self, request: BatchRequest,
                          progress: Callable[[str, Any], None] | None = None
                          ) -> BatchResponse:
        """Run a batch of predicates against one engine.

        The predicates share the session engine's :class:`StatsCache`, so
        table-level statistics are computed once; the response reports the
        cache counters as evidence of the sharing.
        """
        session = self.session(request.client_id)
        t0 = time.perf_counter()
        with self._session_lock(request.client_id):
            self._apply_overrides(session, {}, request.options)
            table_name = session.resolve_table(request.table)
            cache = session.engine_for(table_name).cache
            # Snapshot so the response reports THIS batch's hits/misses,
            # not the engine's lifetime totals.
            hits_before = cache.counters.hits if cache is not None else 0
            misses_before = cache.counters.misses if cache is not None else 0
            results = session.run_many(request.predicates, table=table_name,
                                       progress=progress)
        total_ms = (time.perf_counter() - t0) * 1000.0
        responses = tuple(
            CharacterizeResponse.from_result(r, table=table_name,
                                             page_size=request.page_size)
            for r in results)
        hits = (cache.counters.hits - hits_before
                if cache is not None else None)
        misses = (cache.counters.misses - misses_before
                  if cache is not None else None)
        return BatchResponse(results=responses, total_time_ms=total_ms,
                             cache_hits=hits, cache_misses=misses)

    def submit(self, request: JobSubmitRequest | CharacterizeRequest,
               on_progress: Callable[[str, Any], None] | None = None
               ) -> JobSnapshot:
        """Queue a characterization as an asynchronous job.

        Returns the initial (``pending``) snapshot; poll with
        :meth:`job_status` and stop with :meth:`cancel`.
        """
        inner = (request.request if isinstance(request, JobSubmitRequest)
                 else request)
        job_id = self.jobs.submit(
            lambda progress: self.characterize(inner, progress=progress),
            on_progress=on_progress,
            # Events enter the log already in wire form: the log then
            # holds small JSON-able dicts, not pipeline artifacts that
            # would pin slices and tables for the job's lifetime.
            event_mapper=job_event_from_stage)
        return self._snapshot(self.jobs.get(job_id))

    def job_status(self, job_id: str) -> JobSnapshot:
        """A point-in-time snapshot of one job (with partial views)."""
        return self._snapshot(self.jobs.get(job_id))

    def cancel(self, job_id: str) -> JobSnapshot:
        """Request cancellation and return the resulting snapshot."""
        return self._snapshot(self.jobs.cancel(job_id))

    def wait(self, job_id: str, timeout: float | None = None) -> JobSnapshot:
        """Block until a job finishes (used by tests and simple clients)."""
        return self._snapshot(self.jobs.wait(job_id, timeout=timeout))

    def job_events(self, job_id: str, after_seq: int = 0,
                   timeout: float | None = None
                   ) -> tuple[list[JobEvent], bool]:
        """Typed wire events of a job after ``after_seq``.

        Blocks until events arrive, the job finishes, or ``timeout``
        elapses; returns ``(events, finished)``.  This is the
        long-poll/stream primitive behind ``GET /v2/jobs/<id>/events``.
        """
        raw, finished = self.jobs.events_since(job_id, after_seq=after_seq,
                                               timeout=timeout)
        # Payloads were serialized at record time (see submit), so this
        # is a plain unwrap.
        return [event for _seq, _stage, event in raw], finished

    def view_page(self, request: ViewPageRequest) -> ViewPage:
        """Page through the client's current (latest) result."""
        session = self.session(request.client_id)
        with self._session_lock(request.client_id):
            if not session.history:
                raise NoActiveQueryError(request.client_id)
            views = session.current.result.views
            return ViewPage.from_views(views, page=request.page,
                                       page_size=request.page_size)

    def configure(self, request: ConfigureRequest) -> ConfigureResponse:
        """Apply weight/option overrides to the client's session."""
        session = self.session(request.client_id)
        with self._session_lock(request.client_id):
            self._apply_overrides(session, request.weights, request.options)
            weights = dict(session.config.weights)
        applied = tuple(sorted(request.options))
        return ConfigureResponse(weights=weights, applied=applied)

    # -- panels (used by the v1 adapter) -----------------------------------------

    def view_detail(self, client_id: str, rank: int) -> str:
        """The rendered detail panel for one view of the current result."""
        session = self.session(client_id)
        with self._session_lock(client_id):
            if not session.history:
                raise NoActiveQueryError(client_id)
            return session.view_detail(rank)

    def dendrogram(self, client_id: str) -> str:
        """The current result's dendrogram rendering."""
        session = self.session(client_id)
        with self._session_lock(client_id):
            if not session.history:
                raise NoActiveQueryError(client_id)
            return session.dendrogram()

    # -- dict dispatch (what the HTTP server calls) ------------------------------

    def dispatch(self, payload: Mapping) -> dict:
        """Handle one decoded JSON request; never raises.

        Parses the payload into a typed request, executes it, and returns
        the response dict — or an :class:`ApiError` dict on failure.
        """
        try:
            request = parse_request(payload)
            if isinstance(request, CharacterizeRequest):
                return self.characterize(request).to_dict()
            if isinstance(request, BatchRequest):
                return self.characterize_many(request).to_dict()
            if isinstance(request, ViewPageRequest):
                return self.view_page(request).to_dict()
            if isinstance(request, JobSubmitRequest):
                return self.submit(request).to_dict()
            if isinstance(request, JobControlRequest):
                if request.op == "cancel":
                    return self.cancel(request.job_id).to_dict()
                return self.job_status(request.job_id).to_dict()
            if isinstance(request, TablesRequest):
                return self.list_tables(request).to_dict()
            if isinstance(request, ConfigureRequest):
                return self.configure(request).to_dict()
            raise ProtocolError(
                f"unhandled request type {type(request).__name__}")
        except ReproError as exc:
            return ApiError.from_exception(exc).to_dict()
        except (ValueError, TypeError, KeyError) as exc:
            return ApiError.from_exception(
                ProtocolError(f"{type(exc).__name__}: {exc}")).to_dict()
        except Exception as exc:  # noqa: BLE001 - a service must not 500
            return ApiError.from_exception(exc).to_dict()

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _apply_overrides(session: ZiggySession, weights: Mapping,
                         options: Mapping) -> None:
        if weights:
            session.set_weights(**{str(k): float(v)
                                   for k, v in weights.items()})
        if options:
            session.set_option(**dict(options))

    def _snapshot(self, job: Job) -> JobSnapshot:
        with job.lock:
            status = job.status
            timings = job.timings_ms()
            partial = list(job.partial)
            result = job.result
            error = job.error
        partial_views = tuple(view_to_dict(v, rank)
                              for rank, v in enumerate(partial, start=1))
        return JobSnapshot(
            job_id=job.job_id,
            status=status,
            timings_ms=timings,
            partial_views=partial_views,
            result=result if isinstance(result, CharacterizeResponse) else None,
            error=(ApiError.from_exception(error)
                   if error is not None else None),
        )

    def shutdown(self, wait: bool = True) -> None:
        """Stop the job pool (the catalog and sessions stay usable)."""
        self.jobs.shutdown(wait=wait)
