"""The threaded stdlib HTTP front-end over :class:`ZiggyService`.

The paper's demo architecture is "the query characterization engine and a
Web server"; this is that web server, speaking protocol v2 as JSON over
HTTP with no dependencies beyond the standard library.  It is the
*compatibility baseline* front-end: one OS thread per connection, which
is simple and debuggable but tops out at a few hundred concurrent SSE
subscribers — the asyncio front-end (:mod:`repro.gateway.server`)
multiplexes thousands on one event loop and is selected with
``repro serve --frontend async``.

All route logic — paths, payload shapes, admission control,
backpressure, the healthz/state bodies — lives in the shared
:class:`~repro.gateway.routes.GatewayRoutes`, so the two front-ends
answer byte-identical payloads; this module only owns the
thread-per-connection transport:

==========  =========================  =====================================
method      path                       meaning
==========  =========================  =====================================
GET         /healthz                   liveness, uptime, shard restarts,
                                       journal/snapshot stats, gateway load
GET         /v2/state                  durable-state report (journal,
                                       snapshots, recovery, runtime, gateway)
GET         /v2/tables                 catalog
POST        /v2                        any protocol request (tag-dispatched)
POST        /v2/characterize           characterize (type implied)
POST        /v2/batch                  batch characterize
POST        /v2/views                  page through the current result
POST        /v2/configure              weights / options
POST        /v2/jobs                   submit a job
GET         /v2/jobs/<id>              poll a job
GET         /v2/jobs/<id>/events       stream the job's events (SSE)
POST        /v2/jobs/<id>/cancel       cancel a job
POST        /v1                        legacy v1 action dict (adapter)
==========  =========================  =====================================

The events route streams Server-Sent Events (``text/event-stream``,
stdlib only — the response is written incrementally on a
``Connection: close`` socket): one ``id:``/``event:``/``data:`` block
per :class:`JobEvent` as the job produces them, terminated by a ``done``
event carrying the final job status.  Idle gaps are filled with
``: keepalive`` comments so client read timeouts don't fire mid-search.
A ``Last-Event-ID`` request header resumes the stream after that
sequence number (no events duplicated or lost across reconnects), and a
subscriber whose socket stays unwritable past the policy's
``sse_write_timeout`` is **evicted** — a best-effort ``: client-evicted``
comment, then the connection is dropped — instead of pinning its handler
thread forever.

Error payloads are structured :class:`ApiError` dicts; the HTTP status
mirrors the error code (400 family for caller mistakes, 404 for unknown
jobs/routes, 429 + ``Retry-After`` for throttled work, 500 for internal
faults).
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.errors import ReproError
from repro.gateway.routes import (
    EventStreamReply,
    GatewayPolicy,
    GatewayRoutes,
    JsonReply,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ApiError,
    ErrorCode,
    ProtocolError,
    json_safe,
)
from repro.service.service import ZiggyService


class ZiggyRequestHandler(BaseHTTPRequestHandler):
    """Translates HTTP traffic onto the shared routes; holds no state."""

    server_version = f"ZiggyServe/{PROTOCOL_VERSION}"
    protocol_version = "HTTP/1.1"

    #: Socket timeout (seconds) for reads on a kept-alive connection:
    #: an idle client cannot pin a handler thread past a drain (the
    #: stdlib handler closes the connection when the read times out).
    timeout = 10.0

    # The ThreadingHTTPServer subclass below carries these.
    @property
    def service(self) -> ZiggyService:
        return self.server.service  # type: ignore[attr-defined]

    @property
    def routes(self) -> GatewayRoutes:
        return self.server.routes  # type: ignore[attr-defined]

    # -- plumbing ----------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_reply(self, reply: JsonReply) -> None:
        self._send_json(reply.payload, status=reply.status,
                        headers=reply.headers)

    def _send_json(self, payload: dict, status: int | None = None,
                   headers: tuple = ()) -> None:
        from repro.gateway.routes import status_for
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status if status is not None
                           else status_for(payload))
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") \
                from None

    # -- verbs -------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        reply = self.routes.handle_get(self.path, self.headers)
        if isinstance(reply, EventStreamReply):
            self._stream_job_events(reply.job_id, after=reply.after)
            return
        self._send_reply(reply)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            body = self._read_body()
        except ProtocolError as exc:
            self._send_json(ApiError.from_exception(exc).to_dict())
            return
        self._send_reply(self.routes.handle_post(self.path, body))

    # -- event streaming ---------------------------------------------------------

    def _stream_job_events(self, job_id: str, after: int = 0) -> None:
        """Relay a job's event stream as Server-Sent Events.

        The response carries no Content-Length and is terminated by
        closing the connection (``Connection: close``), which every
        HTTP/1.1 client understands — no chunked-encoding machinery
        needed from the stdlib server.  ``after`` is the reconnect
        cursor (the client's ``Last-Event-ID``).
        """
        routes = self.routes
        rejected = routes.stream_precheck(job_id)  # 404 before committing
        if rejected is not None:
            self._send_reply(rejected)
            return
        policy = routes.policy
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        # From here on this thread only writes; the read timeout becomes
        # the slow-consumer bound — a send() blocked longer than this
        # (client not draining its socket) raises and the subscriber is
        # evicted instead of pinning the handler thread forever.
        self.connection.settimeout(policy.sse_write_timeout)
        # Bound the kernel's per-subscriber send buffer too, so a
        # stalled client blocks the send (and trips the eviction
        # timeout) instead of absorbing megabytes of backlog first.
        try:
            self.connection.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF,
                                       policy.sse_buffer_bytes)
        except OSError:
            pass
        stopping = getattr(self.server, "stopping", None)
        routes.metrics.stream_opened()
        try:
            while True:
                try:
                    events, finished = self.service.job_events(
                        job_id, after_seq=after,
                        timeout=policy.keepalive_seconds)
                except ReproError:
                    # The job was pruned mid-stream (bounded retention);
                    # terminate like a vanished resource, not a hang.
                    self._write_sse(after + 1, "done",
                                    json.dumps({"status": "unknown"}))
                    return
                for event in events:
                    after = max(after, event.seq)
                    self._write_sse(event.seq, event.kind,
                                    json.dumps(json_safe(event.data)))
                if finished:
                    try:
                        status = self.service.job_status(job_id).status
                    except ReproError:  # pruned between the two calls
                        status = "unknown"
                    self._write_sse(after + 1, "done",
                                    json.dumps({"status": status}))
                    return
                if stopping is not None and stopping.is_set():
                    # Server draining: end the stream so the handler
                    # thread can be joined instead of leaked.
                    return
                if not events:
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
        except TimeoutError:
            # Slow consumer: its socket stayed unwritable past the
            # eviction bound.  Best-effort goodbye, then drop it — the
            # job and every other subscriber are unaffected.
            routes.metrics.stream_evicted()
            try:
                self.connection.settimeout(0.2)
                self.wfile.write(b": client-evicted\n\n")
                self.wfile.flush()
            except OSError:
                pass
            return
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away; nothing to clean up
        finally:
            routes.metrics.stream_closed()

    def _write_sse(self, seq: int, kind: str, data: str) -> None:
        block = f"id: {seq}\nevent: {kind}\ndata: {data}\n\n"
        self.wfile.write(block.encode("utf-8"))
        self.wfile.flush()


class ZiggyServer(ThreadingHTTPServer):
    """The threaded HTTP server bound to one :class:`ZiggyService`.

    Handler threads are daemonic (a crashed handler must never pin the
    interpreter), but ``block_on_close`` keeps them joinable: a clean
    :meth:`close` sets :attr:`stopping` (ending in-flight SSE streams at
    their next tick), stops the accept loop, joins every handler thread,
    and shuts the service's executor backend down — nothing is leaked
    on ``serve_forever`` exit.
    """

    daemon_threads = True
    block_on_close = True

    def __init__(self, address: tuple[str, int], service: ZiggyService,
                 verbose: bool = False, policy: GatewayPolicy | None = None):
        super().__init__(address, ZiggyRequestHandler)
        self.service = service
        self.verbose = verbose
        self.routes = GatewayRoutes(service, policy=policy,
                                    frontend="threaded")
        #: Set while a clean shutdown is draining handlers; streaming
        #: handlers poll it so they terminate instead of outliving the
        #: accept loop.
        self.stopping = threading.Event()
        #: Set by :meth:`close` when the service drain failed (e.g. an
        #: executor backend wedged mid-respawn) — the close itself still
        #: completes, sockets and threads released.
        self.shutdown_error: BaseException | None = None
        self._serving = False

    @property
    def legacy_api(self):
        """The v1 compatibility adapter (owned by the shared routes)."""
        return self.routes.legacy_api

    def serve_forever(self, poll_interval: float = 0.5) -> None:  # noqa: D102
        self._serving = True
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving = False

    def close(self, shutdown_service: bool = True,
              wait: bool = True) -> None:
        """Drain and stop everything, in dependency order (idempotent).

        1. flag :attr:`stopping` so SSE streams end at their next tick;
        2. stop the accept loop (when it is running);
        3. close the listening socket and **join** in-flight handler
           threads (``block_on_close``);
        4. shut the service down — which closes the executor backend
           (thread pool or worker processes).

        The service drain is bounded even when the executor is mid
        worker-respawn (the backend waits on its respawn thread with a
        timeout and fails stranded work with a clean error); should the
        drain itself raise, the error lands in :attr:`shutdown_error`
        rather than aborting the close half-way — sockets and handler
        threads are already released by then.
        """
        self.stopping.set()
        if self._serving:
            self.shutdown()
        self.server_close()
        if shutdown_service:
            try:
                self.service.shutdown(wait=wait)
            except ReproError as exc:
                self.shutdown_error = exc


def make_server(service: ZiggyService, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False,
                policy: GatewayPolicy | None = None) -> ZiggyServer:
    """Build (but do not start) a server; ``port=0`` picks a free port."""
    return ZiggyServer((host, port), service, verbose=verbose, policy=policy)


def serve_forever(service: ZiggyService, host: str = "127.0.0.1",
                  port: int = 8765, verbose: bool = True,
                  ready: threading.Event | None = None) -> None:
    """Run the server until interrupted (the CLI's ``repro serve``)."""
    server = make_server(service, host=host, port=port, verbose=verbose)
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close(wait=False)
