"""A stdlib HTTP veneer over :class:`ZiggyService`.

The paper's demo architecture is "the query characterization engine and a
Web server"; this is that web server, speaking protocol v2 as JSON over
HTTP with no dependencies beyond the standard library.

Routes:

==========  =========================  =====================================
method      path                       meaning
==========  =========================  =====================================
GET         /healthz                   liveness, uptime, shard restarts,
                                       journal/snapshot stats
GET         /v2/state                  durable-state report (journal,
                                       snapshots, recovery, runtime)
GET         /v2/tables                 catalog
POST        /v2                        any protocol request (tag-dispatched)
POST        /v2/characterize           characterize (type implied)
POST        /v2/batch                  batch characterize
POST        /v2/views                  page through the current result
POST        /v2/configure              weights / options
POST        /v2/jobs                   submit a job
GET         /v2/jobs/<id>              poll a job
GET         /v2/jobs/<id>/events       stream the job's events (SSE)
POST        /v2/jobs/<id>/cancel       cancel a job
POST        /v1                        legacy v1 action dict (adapter)
==========  =========================  =====================================

The events route streams Server-Sent Events (``text/event-stream``,
stdlib only — the response is written incrementally on a
``Connection: close`` socket): one ``id:``/``event:``/``data:`` block
per :class:`JobEvent` as the job produces them — ``prepared``,
``component-scored``, ``view-ranked`` (views arrive as they are kept,
*before* the job finishes), ``search-complete``, ``view-ready``,
``result`` — terminated by a ``done`` event carrying the final job
status.  Idle gaps are filled with ``: keepalive`` comments so client
read timeouts don't fire mid-search.

Error payloads are structured :class:`ApiError` dicts; the HTTP status
mirrors the error code (400 family for caller mistakes, 404 for unknown
jobs/routes, 500 for internal faults).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.errors import ReproError
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ApiError,
    ErrorCode,
    ProtocolError,
    json_safe,
)
from repro.service.service import ZiggyService

#: Error code -> HTTP status for error payloads.
_STATUS_FOR_CODE = {
    ErrorCode.BAD_REQUEST: 400,
    ErrorCode.UNKNOWN_ACTION: 400,
    ErrorCode.UNKNOWN_TABLE: 404,
    ErrorCode.UNKNOWN_COLUMN: 400,
    ErrorCode.SYNTAX_ERROR: 400,
    ErrorCode.EMPTY_SELECTION: 400,
    ErrorCode.INVALID_CONFIG: 400,
    ErrorCode.NO_ACTIVE_QUERY: 409,
    ErrorCode.JOB_NOT_FOUND: 404,
    ErrorCode.CANCELLED: 200,
    ErrorCode.INTERRUPTED: 200,
    ErrorCode.ERROR: 400,
    ErrorCode.INTERNAL: 500,
}

#: POST /v2/<suffix> -> implied protocol request type.
_IMPLIED_TYPES = {
    "characterize": "characterize",
    "batch": "batch",
    "views": "views",
    "configure": "configure",
    "jobs": "submit",
}


def _status_for(payload: dict) -> int:
    if payload.get("ok", True):
        return 200
    code = (payload.get("error") or {}).get("code", ErrorCode.ERROR)
    return _STATUS_FOR_CODE.get(code, 400)


class ZiggyRequestHandler(BaseHTTPRequestHandler):
    """Translates HTTP traffic onto the service; holds no state itself."""

    server_version = f"ZiggyServe/{PROTOCOL_VERSION}"
    protocol_version = "HTTP/1.1"

    #: Socket timeout (seconds) for reads on a kept-alive connection:
    #: an idle client cannot pin a handler thread past a drain (the
    #: stdlib handler closes the connection when the read times out).
    timeout = 10.0

    # The ThreadingHTTPServer subclass below carries these.
    @property
    def service(self) -> ZiggyService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ----------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, payload: dict, status: int | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status if status is not None
                           else _status_for(payload))
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_payload(self, code: str, message: str,
                            status: int | None = None) -> None:
        self._send_json(ApiError(code=code, message=message).to_dict(),
                        status=status)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") \
                from None

    # -- verbs -------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.rstrip("/")
        if path in ("", "/healthz"):
            from repro import __version__
            executor = self.service.executor.describe()
            state = self.service.state
            persistence: dict[str, Any] = {"enabled": state is not None}
            if state is not None:
                persistence["state_dir"] = state.state_dir
                journal = state.journal.stats()
                persistence["journal"] = {
                    "segments": journal["segments"],
                    "bytes": journal["bytes"],
                    "appends": journal["appends"],
                }
                snapshots = state.snapshots.stats()
                persistence["snapshots"] = {
                    "count": snapshots["count"],
                    "bytes": snapshots["bytes"],
                    "loaded": snapshots["loaded"],
                }
            self._send_json({"ok": True, "protocol": PROTOCOL_VERSION,
                             "version": __version__,
                             "uptime_seconds": round(
                                 self.service.uptime_seconds, 3),
                             "executor": executor,
                             # Per-shard respawn counts, surfaced even
                             # when zero so probes need no key checks
                             # (local backends report an empty map).
                             "restarts": executor.get("restarts", {}),
                             "persistence": persistence,
                             "tables": list(self.service.database
                                            .table_names())})
            return
        if path == "/v2/state":
            self._send_json(self.service.dispatch({"type": "state"}))
            return
        if path == "/v2/tables":
            self._send_json(self.service.dispatch({"type": "tables"}))
            return
        if path.startswith("/v2/jobs/") and path.endswith("/events"):
            job_id = path[len("/v2/jobs/"):-len("/events")]
            self._stream_job_events(job_id)
            return
        if path.startswith("/v2/jobs/"):
            job_id = path[len("/v2/jobs/"):]
            self._send_json(self.service.dispatch(
                {"type": "job", "job_id": job_id, "op": "status"}))
            return
        self._send_error_payload(ErrorCode.BAD_REQUEST,
                                 f"no route for GET {self.path}", status=404)

    # -- event streaming ---------------------------------------------------------

    #: Longest idle stretch (seconds) before a keep-alive comment.
    EVENT_POLL_SECONDS = 1.0

    def _stream_job_events(self, job_id: str) -> None:
        """Relay a job's event stream as Server-Sent Events.

        The response carries no Content-Length and is terminated by
        closing the connection (``Connection: close``), which every
        HTTP/1.1 client understands — no chunked-encoding machinery
        needed from the stdlib server.
        """
        try:
            self.service.job_status(job_id)  # 404 before committing to SSE
        except ReproError as exc:
            self._send_json(ApiError.from_exception(exc).to_dict())
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        after = 0
        stopping = getattr(self.server, "stopping", None)
        try:
            while True:
                try:
                    events, finished = self.service.job_events(
                        job_id, after_seq=after,
                        timeout=self.EVENT_POLL_SECONDS)
                except ReproError:
                    # The job was pruned mid-stream (bounded retention);
                    # terminate like a vanished resource, not a hang.
                    self._write_sse(after + 1, "done",
                                    json.dumps({"status": "unknown"}))
                    return
                for event in events:
                    after = max(after, event.seq)
                    self._write_sse(event.seq, event.kind,
                                    json.dumps(json_safe(event.data)))
                if finished:
                    try:
                        status = self.service.job_status(job_id).status
                    except ReproError:  # pruned between the two calls
                        status = "unknown"
                    self._write_sse(after + 1, "done",
                                    json.dumps({"status": status}))
                    return
                if stopping is not None and stopping.is_set():
                    # Server draining: end the stream so the handler
                    # thread can be joined instead of leaked.
                    return
                if not events:
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away; nothing to clean up

    def _write_sse(self, seq: int, kind: str, data: str) -> None:
        block = f"id: {seq}\nevent: {kind}\ndata: {data}\n\n"
        self.wfile.write(block.encode("utf-8"))
        self.wfile.flush()

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            body = self._read_body()
        except ProtocolError as exc:
            self._send_json(ApiError.from_exception(exc).to_dict())
            return
        path = self.path.rstrip("/")
        if path == "/v1":
            legacy = self.server.legacy_api  # type: ignore[attr-defined]
            if not isinstance(body, dict):
                self._send_json({"ok": False,
                                 "error": "v1 request must be an object",
                                 "code": ErrorCode.BAD_REQUEST}, status=400)
                return
            response = legacy.handle(body)
            self._send_json(response,
                            status=200 if response.get("ok") else 400)
            return
        if path == "/v2":
            self._send_json(self.service.dispatch(body))
            return
        if path.startswith("/v2/jobs/") and path.endswith("/cancel"):
            job_id = path[len("/v2/jobs/"):-len("/cancel")]
            self._send_json(self.service.dispatch(
                {"type": "job", "job_id": job_id, "op": "cancel"}))
            return
        if path.startswith("/v2/"):
            suffix = path[len("/v2/"):]
            implied = _IMPLIED_TYPES.get(suffix)
            if implied is not None:
                payload = dict(body) if isinstance(body, dict) else body
                if isinstance(payload, dict):
                    if implied == "submit":
                        # POST /v2/jobs accepts a characterize request
                        # (bare or tagged) and always submits it as a job;
                        # a pre-wrapped submit envelope passes through.
                        if payload.get("type") != "submit":
                            payload = {"type": "submit",
                                       "request": {**payload,
                                                   "type": "characterize"}}
                    else:
                        payload.setdefault("type", implied)
                self._send_json(self.service.dispatch(payload))
                return
        self._send_error_payload(ErrorCode.BAD_REQUEST,
                                 f"no route for POST {self.path}", status=404)


class ZiggyServer(ThreadingHTTPServer):
    """The HTTP server bound to one :class:`ZiggyService`.

    Handler threads are daemonic (a crashed handler must never pin the
    interpreter), but ``block_on_close`` keeps them joinable: a clean
    :meth:`close` sets :attr:`stopping` (ending in-flight SSE streams at
    their next tick), stops the accept loop, joins every handler thread,
    and shuts the service's executor backend down — nothing is leaked
    on ``serve_forever`` exit.
    """

    daemon_threads = True
    block_on_close = True

    def __init__(self, address: tuple[str, int], service: ZiggyService,
                 verbose: bool = False):
        super().__init__(address, ZiggyRequestHandler)
        self.service = service
        self.verbose = verbose
        #: Set while a clean shutdown is draining handlers; streaming
        #: handlers poll it so they terminate instead of outliving the
        #: accept loop.
        self.stopping = threading.Event()
        #: Set by :meth:`close` when the service drain failed (e.g. an
        #: executor backend wedged mid-respawn) — the close itself still
        #: completes, sockets and threads released.
        self.shutdown_error: BaseException | None = None
        self._serving = False
        # Lazy import: app.api imports the service layer; importing it at
        # module top would be circular.
        from repro.app.api import ZiggyApi
        self.legacy_api = ZiggyApi(service=service)

    def serve_forever(self, poll_interval: float = 0.5) -> None:  # noqa: D102
        self._serving = True
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving = False

    def close(self, shutdown_service: bool = True,
              wait: bool = True) -> None:
        """Drain and stop everything, in dependency order (idempotent).

        1. flag :attr:`stopping` so SSE streams end at their next tick;
        2. stop the accept loop (when it is running);
        3. close the listening socket and **join** in-flight handler
           threads (``block_on_close``);
        4. shut the service down — which closes the executor backend
           (thread pool or worker processes).

        The service drain is bounded even when the executor is mid
        worker-respawn (the backend waits on its respawn thread with a
        timeout and fails stranded work with a clean error); should the
        drain itself raise, the error lands in :attr:`shutdown_error`
        rather than aborting the close half-way — sockets and handler
        threads are already released by then.
        """
        self.stopping.set()
        if self._serving:
            self.shutdown()
        self.server_close()
        if shutdown_service:
            try:
                self.service.shutdown(wait=wait)
            except ReproError as exc:
                self.shutdown_error = exc


def make_server(service: ZiggyService, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False) -> ZiggyServer:
    """Build (but do not start) a server; ``port=0`` picks a free port."""
    return ZiggyServer((host, port), service, verbose=verbose)


def serve_forever(service: ZiggyService, host: str = "127.0.0.1",
                  port: int = 8765, verbose: bool = True,
                  ready: threading.Event | None = None) -> None:
    """Run the server until interrupted (the CLI's ``repro serve``)."""
    server = make_server(service, host=host, port=port, verbose=verbose)
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close(wait=False)
