"""Centroid-distance subspace search (black-box baseline).

The second divergence the paper names: "the distance between the
centroids".  Each candidate column set is scored by the Euclidean
distance between the standardized inside and outside mean vectors.
Blind to spread and correlation changes by construction — the planted
``spread`` and ``correlation`` views in the accuracy experiment are
invisible to it, which is exactly the comparison's point.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.baselines.base import BaselineMethod, group_matrices, pick_disjoint
from repro.core.views import View
from repro.engine.database import Selection


class CentroidDistanceSearch(BaselineMethod):
    """Top-k disjoint column sets by standardized centroid distance.

    Column-wise standardized mean gaps are additive in the squared
    distance, so the best ``d``-subset would just be the top-d columns;
    to stay comparable with tightness-constrained methods the search
    still enumerates pairs and keeps the best disjoint ones.
    """

    name = "centroid_distance"

    def find_views(self, selection: Selection, max_views: int = 8,
                   max_dim: int = 2) -> list[View]:
        inside, outside, names = group_matrices(selection)
        m = len(names)
        if m == 0 or inside.shape[0] < 2 or outside.shape[0] < 2:
            return []
        mean_in = np.nanmean(inside, axis=0)
        mean_out = np.nanmean(outside, axis=0)
        scale = np.nanstd(np.vstack([inside, outside]), axis=0, ddof=1)
        scale[~(scale > 0)] = 1.0
        gap = (mean_in - mean_out) / scale
        gap[np.isnan(gap)] = 0.0
        gap2 = gap * gap

        scored: list[tuple[float, tuple[str, ...]]] = [
            (float(gap2[j]), (names[j],)) for j in range(m)
        ]
        if max_dim >= 2:
            for i, j in itertools.combinations(range(m), 2):
                scored.append((float(math.sqrt(gap2[i] + gap2[j])),
                               tuple(sorted((names[i], names[j])))))
        return pick_disjoint(scored, max_views)
