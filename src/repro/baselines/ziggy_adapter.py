"""Adapter exposing Ziggy itself through the baseline interface.

The accuracy harness iterates over :class:`BaselineMethod` objects; this
adapter lets Ziggy enter the same loop, guaranteeing all methods see the
identical selection and obey the same ``max_views`` / ``max_dim`` caps.
"""

from __future__ import annotations

from repro.core.config import ZiggyConfig
from repro.core.pipeline import Ziggy
from repro.core.views import View
from repro.engine.database import Selection


class ZiggyMethod:
    """Ziggy as a :class:`~repro.baselines.base.BaselineMethod`.

    Args:
        config: base configuration; ``max_views`` / ``max_view_dim`` are
            overridden per call to honour the harness caps.
        significance_filter: keep the spurious-view filter on (the
            default in real use) or off (for ablation).
    """

    name = "ziggy"

    def __init__(self, config: ZiggyConfig | None = None,
                 significance_filter: bool = True):
        self._config = config if config is not None else ZiggyConfig()
        self._significance_filter = significance_filter

    def find_views(self, selection: Selection, max_views: int = 8,
                   max_dim: int = 2) -> list[View]:
        config = self._config.with_overrides(
            max_views=max_views,
            max_view_dim=max_dim,
            significance_filter=self._significance_filter,
        )
        engine = Ziggy(selection.table, config=config, share_statistics=False)
        result = engine.characterize_selection(selection)
        return [vr.view for vr in result.views]
