"""Full-space divergence — the no-views strawman.

One number for the whole table: the symmetrized Gaussian KL divergence
between the inside and outside distributions over *all* numeric columns.
As a "characterization" it returns a single view containing the top
columns by marginal divergence — i.e. what a user gets from a black-box
"your selection is different, trust me" score.  Exists to quantify the
paper's Section 2.1 observation that unconstrained divergence
maximization "favors large, heterogeneous subspaces" and explains
nothing.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BaselineMethod,
    group_matrices,
    nan_mean_cov,
)
from repro.baselines.kl import gaussian_kl
from repro.core.views import View
from repro.engine.database import Selection


class FullSpaceDivergence(BaselineMethod):
    """Single-view baseline: all-columns divergence, top columns reported."""

    name = "fullspace"

    def divergence(self, selection: Selection) -> float:
        """The one black-box number: symmetrized full-space Gaussian KL."""
        inside, outside, _ = group_matrices(selection)
        if inside.shape[0] < 3 or outside.shape[0] < 3:
            return 0.0
        mean_i, cov_i = nan_mean_cov(inside)
        mean_o, cov_o = nan_mean_cov(outside)
        return 0.5 * (gaussian_kl(mean_i, cov_i, mean_o, cov_o)
                      + gaussian_kl(mean_o, cov_o, mean_i, cov_i))

    def find_views(self, selection: Selection, max_views: int = 8,
                   max_dim: int = 2) -> list[View]:
        inside, outside, names = group_matrices(selection)
        if inside.shape[0] < 3 or outside.shape[0] < 3 or not names:
            return []
        # Marginal (per-column) symmetrized KL for the report.
        mean_in = np.nanmean(inside, axis=0)
        mean_out = np.nanmean(outside, axis=0)
        var_in = np.nanvar(inside, axis=0, ddof=1)
        var_out = np.nanvar(outside, axis=0, ddof=1)
        var_in = np.where(var_in > 0, var_in, 1e-9)
        var_out = np.where(var_out > 0, var_out, 1e-9)
        kl = 0.5 * ((var_in / var_out + var_out / var_in) / 2.0 - 1.0
                    + (mean_in - mean_out) ** 2
                    * (1.0 / var_in + 1.0 / var_out) / 2.0)
        kl = np.where(np.isnan(kl), 0.0, kl)
        order = np.argsort(-kl)
        top = tuple(sorted(names[j] for j in order[:max_dim]))
        return [View(columns=top)] if top else []
