"""PCA-based characterization (dimensionality-reduction baseline).

Section 1's critique: dimensionality reduction "transforms the data ...
the tuples that the users visualize are not those that they requested"
and it "ignores the exploration context: they compress the user's
selection, but they do not show how it compares to the rest of the
database."

Implemented faithfully to that critique: PCA runs on the *selection
only* (no outside context), and the "views" are the top-|loading|
original columns of each leading component — the closest a PCA workflow
comes to naming columns.  On planted data it finds the selection's
internal variance structure, not what distinguishes the selection, which
is the expected (and measured) failure mode.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineMethod, group_matrices
from repro.core.views import View
from repro.engine.database import Selection


class PCACharacterizer(BaselineMethod):
    """Views from the top loadings of the selection's principal components."""

    name = "pca"

    def find_views(self, selection: Selection, max_views: int = 8,
                   max_dim: int = 2) -> list[View]:
        inside, _, names = group_matrices(selection)
        if inside.shape[0] < 3 or inside.shape[1] == 0:
            return []
        # Standardize the selection; impute column means for NaNs.
        mean = np.nanmean(inside, axis=0)
        std = np.nanstd(inside, axis=0, ddof=1)
        std[~(std > 0)] = 1.0
        mean[np.isnan(mean)] = 0.0
        data = (np.where(np.isnan(inside), mean[None, :], inside)
                - mean[None, :]) / std[None, :]
        # SVD of the selection; components ordered by singular value.
        try:
            _, _, vt = np.linalg.svd(data, full_matrices=False)
        except np.linalg.LinAlgError:
            return []
        used: set[str] = set()
        views: list[View] = []
        for component in vt:
            if len(views) >= max_views:
                break
            order = np.argsort(-np.abs(component))
            cols = []
            for j in order:
                name = names[j]
                if name in used:
                    continue
                cols.append(name)
                if len(cols) == max_dim:
                    break
            if not cols:
                continue
            used.update(cols)
            views.append(View(columns=tuple(cols)))
        return views
