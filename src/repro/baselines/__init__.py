"""Baseline characterization methods Ziggy is compared against.

The paper positions Ziggy against two families of alternatives:

* **black-box divergence subspace search** (Section 2.2: "Common examples
  of divergence functions D are the distance between the centroids and
  the Kullback-Leibler divergence ... most of these operate in a 'black
  box' fashion") — implemented as beam searches maximizing KL divergence
  (:mod:`repro.baselines.kl`) and centroid distance
  (:mod:`repro.baselines.centroid`);
* **dimensionality reduction** (Section 1: PCA "transforms the data ...
  the tuples that the users visualize are not those that they requested"
  and "ignore the exploration context") —
  :mod:`repro.baselines.pca` characterizes the selection by the
  top-loading columns of the principal components of the selection.

Two structural ablations complete the set: exhaustive scoring of every
column pair (:mod:`repro.baselines.beam` — quality upper bound at
quadratic cost) and a single full-space divergence score with no view
structure (:mod:`repro.baselines.fullspace` — what "just compare the
distributions" gives you).

All baselines implement :class:`BaselineMethod` and return plain
:class:`~repro.core.views.View` lists, so the recovery metrics in
:mod:`repro.experiments.metrics` treat every method identically.
"""

from repro.baselines.base import BaselineMethod, group_matrices
from repro.baselines.kl import KLDivergenceSearch, gaussian_kl
from repro.baselines.centroid import CentroidDistanceSearch
from repro.baselines.pca import PCACharacterizer
from repro.baselines.beam import ExhaustivePairSearch
from repro.baselines.fullspace import FullSpaceDivergence
from repro.baselines.ziggy_adapter import ZiggyMethod

__all__ = [
    "BaselineMethod",
    "group_matrices",
    "KLDivergenceSearch",
    "gaussian_kl",
    "CentroidDistanceSearch",
    "PCACharacterizer",
    "ExhaustivePairSearch",
    "FullSpaceDivergence",
    "ZiggyMethod",
]
