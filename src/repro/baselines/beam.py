"""Exhaustive pair scoring — the quality upper bound at quadratic cost.

Scores *every* single column and every column pair with the same
Zig-Dissimilarity ingredients Ziggy uses (standardized mean gap, log SD
ratio, Fisher correlation gap), skipping the dependency-graph pruning
entirely.  It bounds what candidate generation can lose: if Ziggy's
clustering-pruned search recovers nearly what this O(M^2)-scorer
recovers, the pruning is justified (that is the EXT-ACC comparison).
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.baselines.base import BaselineMethod, group_matrices, pick_disjoint
from repro.core.views import View
from repro.engine.database import Selection
from repro.stats.correlation import fisher_z, masked_correlation_matrix


class ExhaustivePairSearch(BaselineMethod):
    """Full O(M^2) enumeration with a Ziggy-like composite score."""

    name = "exhaustive_pairs"

    def find_views(self, selection: Selection, max_views: int = 8,
                   max_dim: int = 2) -> list[View]:
        inside, outside, names = group_matrices(selection)
        m = len(names)
        if m == 0 or inside.shape[0] < 4 or outside.shape[0] < 4:
            return []
        mean_in = np.nanmean(inside, axis=0)
        mean_out = np.nanmean(outside, axis=0)
        sd_in = np.nanstd(inside, axis=0, ddof=1)
        sd_out = np.nanstd(outside, axis=0, ddof=1)
        pooled = np.sqrt((sd_in ** 2 + sd_out ** 2) / 2.0)
        pooled[~(pooled > 0)] = 1.0
        mean_gap = np.abs(mean_in - mean_out) / pooled
        mean_gap[np.isnan(mean_gap)] = 0.0
        with np.errstate(divide="ignore", invalid="ignore"):
            sd_gap = np.abs(np.log(sd_in / sd_out))
        sd_gap[~np.isfinite(sd_gap)] = 0.0
        unary = mean_gap + sd_gap

        scored: list[tuple[float, tuple[str, ...]]] = [
            (float(unary[j]), (names[j],)) for j in range(m)
        ]
        if max_dim >= 2:
            corr_in, _ = masked_correlation_matrix(inside)
            corr_out, _ = masked_correlation_matrix(outside)
            for i, j in itertools.combinations(range(m), 2):
                r_i, r_o = corr_in[i, j], corr_out[i, j]
                corr_gap = 0.0
                if r_i == r_i and r_o == r_o:
                    corr_gap = abs(fisher_z(r_i) - fisher_z(r_o))
                score = float(unary[i] + unary[j]) / 2.0 + corr_gap
                if math.isfinite(score) and score > 0:
                    scored.append(
                        (score, tuple(sorted((names[i], names[j])))))
        return pick_disjoint(scored, max_views)
