"""KL-divergence subspace search (black-box baseline).

Scores every candidate column set by the Gaussian Kullback-Leibler
divergence between the inside and outside distributions restricted to
those columns, and returns the top disjoint sets.  This is the classic
"distribution difference" objective the paper cites — powerful, but it
cannot tell the user *why* a subspace scored high (no per-indicator
decomposition), which is precisely the gap Zig-Components fill.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import (
    BaselineMethod,
    group_matrices,
    nan_mean_cov,
    pick_disjoint,
)
from repro.core.views import View
from repro.engine.database import Selection

#: Ridge added to covariance diagonals for numerical stability.
_RIDGE = 1e-9


def gaussian_kl(mean_p: np.ndarray, cov_p: np.ndarray,
                mean_q: np.ndarray, cov_q: np.ndarray) -> float:
    """KL(P || Q) for two multivariate Gaussians.

    ``0.5 * (tr(Sq^-1 Sp) + (mq-mp)' Sq^-1 (mq-mp) - d + ln det Sq/det Sp)``.
    Degenerate covariances are ridged; a still-singular pair returns +inf
    (maximal divergence), which is the right ranking behaviour for a
    constant-inside column.
    """
    d = mean_p.size
    cov_p = cov_p + _RIDGE * np.eye(d)
    cov_q = cov_q + _RIDGE * np.eye(d)
    try:
        inv_q = np.linalg.inv(cov_q)
        sign_p, logdet_p = np.linalg.slogdet(cov_p)
        sign_q, logdet_q = np.linalg.slogdet(cov_q)
    except np.linalg.LinAlgError:
        return math.inf
    if sign_p <= 0 or sign_q <= 0:
        return math.inf
    diff = mean_q - mean_p
    kl = 0.5 * (float(np.trace(inv_q @ cov_p))
                + float(diff @ inv_q @ diff)
                - d + (logdet_q - logdet_p))
    return max(kl, 0.0)


class KLDivergenceSearch(BaselineMethod):
    """Beam search over column sets maximizing symmetrized Gaussian KL.

    Candidate growth is greedy: start from the best single columns, then
    extend each beam member by the column that maximizes the divergence,
    up to ``max_dim``.  ``beam_width`` bounds the frontier.
    """

    name = "kl_divergence"

    def __init__(self, beam_width: int = 12, symmetric: bool = True):
        self.beam_width = beam_width
        self.symmetric = symmetric

    def _divergence(self, inside: np.ndarray, outside: np.ndarray,
                    idx: tuple[int, ...]) -> float:
        sub_in = inside[:, idx]
        sub_out = outside[:, idx]
        mean_i, cov_i = nan_mean_cov(sub_in)
        mean_o, cov_o = nan_mean_cov(sub_out)
        if np.isnan(mean_i).any() or np.isnan(mean_o).any():
            return 0.0
        kl = gaussian_kl(mean_i, cov_i, mean_o, cov_o)
        if self.symmetric:
            kl = 0.5 * (kl + gaussian_kl(mean_o, cov_o, mean_i, cov_i))
        if not math.isfinite(kl):
            return 1e12  # rank degenerate-but-different sets on top
        return kl

    def find_views(self, selection: Selection, max_views: int = 8,
                   max_dim: int = 2) -> list[View]:
        inside, outside, names = group_matrices(selection)
        m = len(names)
        if m == 0 or inside.shape[0] < 3 or outside.shape[0] < 3:
            return []
        singles = [((j,), self._divergence(inside, outside, (j,)))
                   for j in range(m)]
        singles.sort(key=lambda t: -t[1])
        beam = singles[: self.beam_width]
        best: dict[tuple[int, ...], float] = dict(beam)
        for _ in range(max_dim - 1):
            frontier: list[tuple[tuple[int, ...], float]] = []
            for idx, _ in beam:
                for j in range(m):
                    if j in idx:
                        continue
                    cand = tuple(sorted(idx + (j,)))
                    if cand in best:
                        continue
                    score = self._divergence(inside, outside, cand)
                    best[cand] = score
                    frontier.append((cand, score))
            if not frontier:
                break
            frontier.sort(key=lambda t: -t[1])
            beam = frontier[: self.beam_width]
        scored = [(score, tuple(names[j] for j in idx))
                  for idx, score in best.items()]
        return pick_disjoint(scored, max_views)
