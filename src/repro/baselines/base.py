"""Common interface for all characterization methods."""

from __future__ import annotations

import numpy as np

from repro.core.views import View
from repro.engine.database import Selection


def group_matrices(selection: Selection,
                   columns: tuple[str, ...] | None = None
                   ) -> tuple[np.ndarray, np.ndarray, tuple[str, ...]]:
    """``(inside, outside, names)`` float matrices over numeric columns.

    The shared data-access helper for baselines: rows with NaN are kept
    (each method decides how to treat them; the Gaussian baselines use
    column-wise nan-aware moments).
    """
    table = selection.table
    if columns is None:
        columns = table.numeric_column_names()
    data = table.numeric_matrix(columns)
    return data[selection.mask], data[~selection.mask], tuple(columns)


class BaselineMethod:
    """A characterization method: selection in, ranked views out.

    Subclasses set :attr:`name` and implement :meth:`find_views`.  The
    contract mirrors Ziggy's output shape (ranked, disjoint views of
    bounded dimension) so recovery metrics compare like with like.
    """

    name: str = ""

    def find_views(self, selection: Selection, max_views: int = 8,
                   max_dim: int = 2) -> list[View]:
        """Return up to ``max_views`` disjoint views, best first."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def pick_disjoint(scored: list[tuple[float, tuple[str, ...]]],
                  max_views: int) -> list[View]:
    """Greedy disjoint selection from ``(score, columns)`` candidates.

    Shared by all subspace-search baselines so they apply the same
    diversity rule as Ziggy (Eq. 4).
    """
    scored = sorted(scored, key=lambda t: (-t[0], t[1]))
    used: set[str] = set()
    out: list[View] = []
    for _, columns in scored:
        if len(out) >= max_views:
            break
        if any(c in used for c in columns):
            continue
        out.append(View(columns=columns))
        used.update(columns)
    return out


def nan_mean_cov(data: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """NaN-aware mean vector and covariance matrix (pairwise complete)."""
    mean = np.nanmean(data, axis=0)
    centered = data - mean
    filled = np.where(np.isnan(centered), 0.0, centered)
    valid = (~np.isnan(centered)).astype(np.float64)
    counts = valid.T @ valid
    cov = (filled.T @ filled) / np.maximum(counts - 1.0, 1.0)
    return mean, cov
